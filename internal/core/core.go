// Package core is the library's public face: a Planner that computes
// single-pair routes over a graph with a selectable algorithm — the paper's
// primary contribution packaged the way a downstream Advanced Traveller
// Information System would call it.
//
//	g := mpls.MustGenerate(mpls.Config{})
//	p, err := core.New(g)
//	route, err := p.RouteByName("A", "B", core.Options{})
//
// Construction is configured with functional options rather than ad-hoc
// setters: core.New(g, core.WithCH(), core.WithTracer(t)) readies the
// contraction hierarchy eagerly and attaches a tracer in one call, so a
// fully-configured Planner is immutable from the caller's point of view —
// the property the route package's snapshot publication relies on.
//
// The default algorithm is A* with the euclidean estimator, which is
// admissible (hence optimal) whenever edge costs dominate straight-line
// distance — true for both the grid benchmarks and the road map. The other
// algorithms of the paper, plus the bidirectional and weighted extensions,
// are one Options field away; the experiments package measures them all.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ch"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/tracing"
)

// Algorithm selects a path-computation algorithm.
type Algorithm int

const (
	// AStarEuclidean is A* with the straight-line-distance estimator: the
	// default, optimal on distance-costed maps.
	AStarEuclidean Algorithm = iota
	// AStarManhattan is A* version 3's estimator: perfect on uniform grids,
	// inadmissible (fast but possibly suboptimal) on road maps.
	AStarManhattan
	// Dijkstra is the estimator-free single-source algorithm with early
	// termination.
	Dijkstra
	// Iterative is the breadth-first transitive-closure-style algorithm; it
	// always explores the whole reachable graph.
	Iterative
	// Bidirectional runs Dijkstra from both endpoints simultaneously.
	Bidirectional
	// CH answers queries over a precomputed contraction hierarchy
	// (internal/ch): per-query work nearly independent of graph size, at
	// the price of a preprocessing pass after every cost change. The
	// Planner builds the hierarchy lazily on first use and rebuilds
	// synchronously when edge costs have changed; the route service layers
	// background rebuilds with Dijkstra fallback on top.
	CH
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AStarEuclidean:
		return "astar-euclidean"
	case AStarManhattan:
		return "astar-manhattan"
	case Dijkstra:
		return "dijkstra"
	case Iterative:
		return "iterative"
	case Bidirectional:
		return "bidirectional"
	case CH:
		return "ch"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists every selectable algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{AStarEuclidean, AStarManhattan, Dijkstra, Iterative, Bidirectional, CH}
}

// ParseAlgorithm resolves a name as printed by String.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if strings.EqualFold(s, a.String()) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want one of %v)", s, Algorithms())
}

// Options tunes a route computation.
type Options struct {
	// Algorithm; the zero value is AStarEuclidean.
	Algorithm Algorithm
	// Weight scales the estimator for the A* algorithms (weighted A*,
	// the speed-versus-optimality knob). 0 means 1; values above 1 bound
	// the returned cost by Weight × optimal.
	Weight float64
	// Frontier selects the frontier data structure for the best-first
	// algorithms (heap by default; scan and duplicate-tolerant variants
	// exist for the paper's design-decision ablations).
	Frontier search.FrontierKind
}

// Route is a computed route with its work accounting.
type Route struct {
	// Found reports whether any path exists.
	Found bool
	// Path is the node sequence (empty when !Found).
	Path graph.Path
	// Cost is the path cost under the graph's current edge costs.
	Cost float64
	// Algorithm is what computed it.
	Algorithm Algorithm
	// Trace is the algorithm's work accounting.
	Trace search.Trace
}

// Planner computes routes over one graph. It is safe for concurrent use as
// long as edge costs are not mutated concurrently; the route package's
// Service adds that synchronisation by binding each Planner to an
// immutable published snapshot.
type Planner struct {
	g *graph.Graph

	// tracer, when set via WithTracer, gives work the Planner starts on
	// its own (the lazy CH build) a trace of its own; request-path spans
	// ride the caller's context and need no tracer here. A nil tracer is
	// disabled — every tracing call is nil-safe.
	tracer *tracing.Tracer

	// Contraction-hierarchy state for the CH algorithm: the index is built
	// lazily on first use and keyed on the graph's CostVersion. chMu
	// serialises builds so concurrent first queries trigger exactly one.
	chIdx atomic.Pointer[ch.Index]
	chMu  sync.Mutex
}

// PlannerOption configures a Planner at construction. Options are applied
// in the order given; put WithTracer before WithCH so the eager hierarchy
// build it triggers is traced.
type PlannerOption func(*Planner) error

// WithCH readies the contraction hierarchy eagerly, so the first
// Algorithm: CH route is served by the index instead of paying the
// structural contraction on a query path.
func WithCH() PlannerOption {
	return func(p *Planner) error {
		_, err := p.CHIndex()
		return err
	}
}

// WithTracer attaches a tracer for the work the Planner starts on its own
// (the lazy or eager CH build). Request-path spans attach to the span
// already in the caller's context and do not need it.
func WithTracer(t *tracing.Tracer) PlannerOption {
	return func(p *Planner) error {
		p.tracer = t
		return nil
	}
}

// New wraps g, applying options in order. The graph is not copied; the
// caller promises not to mutate edge costs concurrently with computations
// (the route package keeps that promise by giving each snapshot its own
// Planner over a graph that is frozen at publish time). New fails only
// when a fallible option (WithCH on an empty graph) does.
func New(g *graph.Graph, opts ...PlannerOption) (*Planner, error) {
	p := &Planner{g: g}
	for _, o := range opts {
		if err := o(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustNew is New, panicking on option failure — for construction sites
// whose options are statically known to be infallible.
func MustNew(g *graph.Graph, opts ...PlannerOption) *Planner {
	p, err := New(g, opts...)
	if err != nil {
		panic(fmt.Sprintf("core: MustNew: %v", err))
	}
	return p
}

// NewPlanner wraps g.
//
// Deprecated: use New, which takes functional options (WithCH,
// WithTracer) instead of post-construction setters.
func NewPlanner(g *graph.Graph) *Planner { return &Planner{g: g} }

// Graph returns the planner's graph.
func (p *Planner) Graph() *graph.Graph { return p.g }

// Route computes a route from from to to under opts.
func (p *Planner) Route(from, to graph.NodeID, opts Options) (Route, error) {
	return p.RouteCtx(context.Background(), from, to, opts)
}

// RouteCtx is Route under a request lifecycle: every kernel polls ctx
// from its main loop (see search.CheckInterval) and the call returns a
// typed lifecycle error — search.ErrCanceled, search.ErrDeadline, or
// search.ErrBudget — with partial trace data discarded, as soon as the
// context dies or the expansion budget (search.WithBudget) runs out.
//
// Under an active trace the computation shows up as a "kernel" span
// carrying the algorithm and its work counters; the CH path nests its
// search and unpack phases beneath it.
func (p *Planner) RouteCtx(ctx context.Context, from, to graph.NodeID, opts Options) (Route, error) {
	ctx, sp := tracing.Start(ctx, "kernel")
	defer sp.End()
	sp.SetStr("algo", opts.Algorithm.String())
	rt, err := p.routeDispatch(ctx, from, to, opts)
	if err != nil {
		return rt, err
	}
	sp.SetBool("found", rt.Found)
	sp.SetInt("iterations", int64(rt.Trace.Iterations))
	sp.SetInt("expansions", int64(rt.Trace.Expansions))
	return rt, nil
}

// routeDispatch selects and runs the kernel for opts.Algorithm.
func (p *Planner) routeDispatch(ctx context.Context, from, to graph.NodeID, opts Options) (Route, error) {
	var (
		res search.Result
		err error
	)
	switch opts.Algorithm {
	case Iterative:
		res, err = search.IterativeCtx(ctx, p.g, from, to)
	case Dijkstra:
		res, err = search.BestFirstCtx(ctx, p.g, from, to, search.Options{
			Estimator: estimator.Zero(),
			Frontier:  opts.Frontier,
			Label:     opts.Algorithm.String(),
		})
	case Bidirectional:
		res, err = search.BidirectionalCtx(ctx, p.g, from, to)
	case AStarEuclidean, AStarManhattan:
		est := estimator.Euclidean()
		if opts.Algorithm == AStarManhattan {
			est = estimator.Manhattan()
		}
		if opts.Weight != 0 && opts.Weight != 1 {
			est = estimator.Scaled(est, opts.Weight)
		}
		res, err = search.BestFirstCtx(ctx, p.g, from, to, search.Options{
			Estimator:   est,
			Frontier:    opts.Frontier,
			AllowReopen: true,
			Label:       opts.Algorithm.String(),
		})
	case CH:
		return p.routeCH(ctx, from, to)
	default:
		return Route{}, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
	if err != nil {
		return Route{}, err
	}
	return Route{
		Found:     res.Found,
		Path:      res.Path,
		Cost:      res.Cost,
		Algorithm: opts.Algorithm,
		Trace:     res.Trace,
	}, nil
}

// CHIndex returns the planner's contraction hierarchy for the graph's
// current cost version, readying it if needed. The first call pays a
// structural contraction; afterwards the topology is cached and a cost
// mutation only costs a metric customization, so even the synchronous
// refresh here is milliseconds. Callers who cannot afford the first
// build on a query path (the route service) maintain their own index and
// use the planner only for fallback.
func (p *Planner) CHIndex() (*ch.Index, error) {
	want := p.g.CostVersion()
	if ix := p.chIdx.Load(); ix != nil && ix.CostVersion() == want {
		return ix, nil
	}
	p.chMu.Lock()
	defer p.chMu.Unlock()
	// Re-check under the lock: another goroutine may have readied the
	// index while we waited, and the version may have moved again.
	want = p.g.CostVersion()
	if ix := p.chIdx.Load(); ix != nil && ix.CostVersion() == want {
		return ix, nil
	}
	if old := p.chIdx.Load(); old != nil && old.Topology().Matches(p.g) {
		ix, err := old.Topology().NewIndex(p.g)
		if err != nil {
			return nil, err
		}
		p.chIdx.Store(ix)
		return ix, nil
	}
	// The structural contraction is the Planner's one self-started heavy
	// phase; under WithTracer it gets a trace of its own.
	_, tr := p.tracer.StartBackground("core.ch.build")
	ix, err := ch.Build(p.g, ch.Options{})
	p.tracer.Finish(tr)
	if err != nil {
		return nil, err
	}
	p.chIdx.Store(ix)
	return ix, nil
}

// routeCH answers via the contraction hierarchy. Settled nodes map onto the
// trace's expansion counters so the experiment harness and /stats compare
// CH work against the other kernels on the same axis. The ch package
// returns raw context errors; FromContextErr folds them into the search
// package's typed vocabulary so callers handle one error set.
func (p *Planner) routeCH(ctx context.Context, from, to graph.NodeID) (Route, error) {
	ix, err := p.CHIndex()
	if err != nil {
		return Route{}, err
	}
	res, err := ix.QueryCtx(ctx, from, to)
	if err != nil {
		return Route{}, search.FromContextErr(err)
	}
	return Route{
		Found:     res.Found,
		Path:      res.Path,
		Cost:      res.Cost,
		Algorithm: CH,
		Trace: search.Trace{
			Iterations:  res.Settled,
			Expansions:  res.Settled,
			Relaxations: res.Relaxed,
		},
	}, nil
}

// RouteByName computes a route between named landmarks.
func (p *Planner) RouteByName(from, to string, opts Options) (Route, error) {
	s, ok := p.g.Lookup(from)
	if !ok {
		return Route{}, fmt.Errorf("core: unknown landmark %q", from)
	}
	d, ok := p.g.Lookup(to)
	if !ok {
		return Route{}, fmt.Errorf("core: unknown landmark %q", to)
	}
	return p.Route(s, d, opts)
}
