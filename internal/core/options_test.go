package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/tracing"
)

func TestNewAppliesOptionsInOrder(t *testing.T) {
	const k = 8
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 1})

	tr := tracing.New(tracing.Config{SampleRate: 1, Capacity: 4})
	p, err := New(g, WithTracer(tr), WithCH())
	if err != nil {
		t.Fatal(err)
	}
	if p.tracer != tr {
		t.Error("WithTracer did not attach the tracer")
	}
	// WithCH prebuilds the index: the first CH route must be served
	// without another build (same pointer as the eager one).
	ix, err := p.CHIndex()
	if err != nil {
		t.Fatal(err)
	}
	if ix2 := p.chIdx.Load(); ix2 != ix {
		t.Error("CHIndex after WithCH rebuilt instead of reusing the eager index")
	}
	s, d := gridgen.Pair(k, gridgen.SemiDiagonal, 0)
	r, err := p.Route(s, d, Options{Algorithm: CH})
	if err != nil || !r.Found {
		t.Fatalf("CH route after WithCH: %v, found=%v", err, r.Found)
	}
}

func TestNewPropagatesOptionError(t *testing.T) {
	empty := graph.NewBuilder(0, 0).MustBuild()
	if _, err := New(empty, WithCH()); err == nil {
		t.Fatal("WithCH on an empty graph should fail New")
	}
}

func TestMustNewPanicsOnOptionError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on a failing option")
		}
	}()
	empty := graph.NewBuilder(0, 0).MustBuild()
	MustNew(empty, WithCH())
}

func TestDeprecatedNewPlannerStillWorks(t *testing.T) {
	const k = 6
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 3})
	p := NewPlanner(g)
	s, d := gridgen.Pair(k, gridgen.SemiDiagonal, 0)
	r, err := p.Route(s, d, Options{Algorithm: Dijkstra})
	if err != nil || !r.Found {
		t.Fatalf("NewPlanner route: %v, found=%v", err, r.Found)
	}
}
