package core

import (
	"math"
	"testing"

	"repro/internal/gridgen"
	"repro/internal/search"
)

func TestAlgorithmNamesRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("%v: parse = %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Error("unknown name parsed")
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Error("unknown algorithm name")
	}
	// Case-insensitive.
	if a, err := ParseAlgorithm("DIJKSTRA"); err != nil || a != Dijkstra {
		t.Errorf("upper-case parse = %v, %v", a, err)
	}
}

func TestAllAlgorithmsAgreeOnOptimalCost(t *testing.T) {
	const k = 12
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 5})
	p := MustNew(g)
	s, d := gridgen.Pair(k, gridgen.SemiDiagonal, 0)

	want := math.NaN()
	for _, a := range Algorithms() {
		r, err := p.Route(s, d, Options{Algorithm: a})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !r.Found {
			t.Fatalf("%v: not found", a)
		}
		if r.Algorithm != a {
			t.Errorf("%v: result labelled %v", a, r.Algorithm)
		}
		if math.IsNaN(want) {
			want = r.Cost
			continue
		}
		if math.Abs(r.Cost-want) > 1e-9 {
			t.Errorf("%v: cost %v, others %v", a, r.Cost, want)
		}
	}
}

func TestWeightedRouteBounded(t *testing.T) {
	const k = 15
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 2})
	p := MustNew(g)
	s, d := gridgen.Pair(k, gridgen.Diagonal, 0)
	opt, err := p.Route(s, d, Options{Algorithm: Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Route(s, d, Options{Algorithm: AStarManhattan, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Cost < opt.Cost-1e-9 || w.Cost > 2*opt.Cost+1e-9 {
		t.Errorf("weighted cost %v outside [%v, %v]", w.Cost, opt.Cost, 2*opt.Cost)
	}
	if w.Trace.Iterations > opt.Trace.Iterations {
		t.Errorf("weighted A* expanded more (%d) than Dijkstra (%d)", w.Trace.Iterations, opt.Trace.Iterations)
	}
}

func TestRouteByName(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 5})
	p := MustNew(g)
	// Grids have no names; expect errors.
	if _, err := p.RouteByName("A", "B", Options{}); err == nil {
		t.Error("unknown landmark accepted")
	}
	if p.Graph() != g {
		t.Error("Graph() does not return the wrapped graph")
	}
}

func TestFrontierOptionPassedThrough(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Variance, Seed: 1})
	p := MustNew(g)
	s, d := gridgen.Pair(8, gridgen.Diagonal, 0)
	heap, err := p.Route(s, d, Options{Algorithm: Dijkstra, Frontier: search.FrontierHeap})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := p.Route(s, d, Options{Algorithm: Dijkstra, Frontier: search.FrontierScan})
	if err != nil {
		t.Fatal(err)
	}
	if heap.Cost != scan.Cost {
		t.Errorf("frontier kinds disagree: %v vs %v", heap.Cost, scan.Cost)
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 4})
	p := MustNew(g)
	if _, err := p.Route(0, 5, Options{Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDefaultIsAStarEuclidean(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 6})
	p := MustNew(g)
	r, err := p.Route(0, 35, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != AStarEuclidean {
		t.Errorf("default algorithm = %v", r.Algorithm)
	}
	if !r.Found || r.Path.Len() == 0 {
		t.Error("default route not found")
	}
}
