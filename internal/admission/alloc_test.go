package admission

import (
	"testing"

	"repro/internal/telemetry"
)

// TestGateFastPathsZeroAlloc is the gate test behind the //atis:hotpath
// annotations on admitOrPark and release: the immediate-grant, shed, and
// release decisions allocate nothing. Only a request that must park pays
// for its waiter — the blessed allocation the //lint:ignore in
// admitOrPark documents.
func TestGateFastPathsZeroAlloc(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 1, MaxQueue: 1}, telemetry.NewRegistry())

	t.Run("grant and release", func(t *testing.T) {
		allocs := testing.AllocsPerRun(1000, func() {
			admitted, _, err := g.admitOrPark(1)
			if !admitted || err != nil {
				t.Errorf("want immediate grant, got admitted=%v err=%v", admitted, err)
			}
			g.release(1)
		})
		if allocs != 0 {
			t.Fatalf("grant/release cycle allocates %.1f times per op, want 0", allocs)
		}
	})

	t.Run("shed", func(t *testing.T) {
		// Saturate the semaphore and fill the one-deep queue so every
		// further arrival takes the shed branch.
		admitted, _, err := g.admitOrPark(1)
		if !admitted || err != nil {
			t.Fatalf("want immediate grant, got admitted=%v err=%v", admitted, err)
		}
		if _, w, err := g.admitOrPark(1); err != nil || w == nil {
			t.Fatalf("want parked waiter, got w=%v err=%v", w, err)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if _, _, err := g.admitOrPark(1); err != ErrShed {
				t.Errorf("want ErrShed, got %v", err)
			}
		})
		if allocs != 0 {
			t.Fatalf("shed decision allocates %.1f times per op, want 0", allocs)
		}
	})
}
