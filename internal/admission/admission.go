// Package admission is the server's load-shedding front door: a weighted
// semaphore sized from the machine's parallelism, a bounded FIFO wait
// queue, and per-algorithm-class expansion budgets.
//
// The design follows the standard overload playbook. Searches are
// CPU-bound, so admitting more of them than the machine has cores buys
// no throughput — it only inflates every request's latency until all of
// them miss their deadlines (congestion collapse). The gate therefore
// caps concurrent search work at a small multiple of GOMAXPROCS,
// parks a bounded number of excess requests in arrival order, and sheds
// the rest immediately with ErrShed so clients get a fast, honest 503
// instead of a slow timeout. Queued requests keep their context: a
// caller that gives up while waiting leaves the queue without consuming
// capacity.
//
// Weights let expensive algorithm classes count for more than one slot:
// the paper's iterative kernel explores the whole reachable graph every
// run, so one iterative request displaces two cheap ones. Expansion
// budgets (search.WithBudget) bound the work a single admitted request
// can do, with the iterative class tightest — admission controls how
// many searches run, budgets control how big each may get.
package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// ErrShed reports that the gate's wait queue was full and the request
// was rejected immediately. HTTP handlers translate it to 503 with a
// Retry-After hint.
var ErrShed = errors.New("admission: server saturated, request shed")

// Class describes how the gate treats one algorithm family.
type Class struct {
	// Name labels telemetry.
	Name string
	// Weight is the semaphore units one request of this class occupies.
	Weight int64
	// MaxExpansions bounds the search's expansion count
	// (search.WithBudget); 0 means unbudgeted. These are runaway
	// backstops far above any sane request on the bundled maps, not
	// fairness knobs — the deadline is the primary bound.
	MaxExpansions int
}

// ClassFor maps an algorithm onto its admission class. The iterative
// kernel always explores the whole reachable graph, so it weighs double
// and gets the tightest expansion budget; CH queries settle a few
// hundred nodes regardless of graph size and run unbudgeted.
func ClassFor(algo core.Algorithm) Class {
	switch algo {
	case core.Iterative:
		return Class{Name: "iterative", Weight: 2, MaxExpansions: 2_000_000}
	case core.CH:
		return Class{Name: "ch", Weight: 1, MaxExpansions: 0}
	default:
		return Class{Name: "best-first", Weight: 1, MaxExpansions: 8_000_000}
	}
}

// Config sizes a Gate. The zero value yields production defaults.
type Config struct {
	// MaxInFlight is the semaphore capacity in weight units; 0 means
	// 2×GOMAXPROCS (searches are CPU-bound; a small multiple keeps the
	// cores busy through scheduling gaps without oversubscribing).
	MaxInFlight int
	// MaxQueue bounds waiting requests; 0 means max(64, 8×capacity).
	// Beyond it, Acquire sheds. A queue several times the capacity
	// absorbs arrival bursts; deeper queues only add dead time.
	MaxQueue int
	// DefaultBudget is the server-side deadline applied to requests
	// that do not ask for one; 0 means 10s.
	DefaultBudget time.Duration
	// MaxBudget caps client-requested deadlines (?budget_ms=); 0 means
	// 60s.
	MaxBudget time.Duration
	// Degrade enables degraded answers for shed route requests: served
	// from the route cache or the CH index instead of a 503.
	Degrade bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.MaxInFlight
		if c.MaxQueue < 64 {
			c.MaxQueue = 64
		}
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 10 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 60 * time.Second
	}
	return c
}

// waiter is one parked Acquire call. ready is buffered so a grant never
// blocks the releaser; abandoned marks a waiter whose context died
// before it was granted (the grant loop skips it).
type waiter struct {
	weight    int64
	ready     chan struct{}
	abandoned bool
}

// Gate is the weighted-semaphore admission controller. Safe for
// concurrent use.
type Gate struct {
	cfg      Config
	capacity int64

	mu       sync.Mutex
	inFlight int64
	queue    []*waiter

	granted  *telemetry.Counter // admitted without waiting
	queued   *telemetry.Counter // admitted after waiting
	shed     *telemetry.Counter // rejected, queue full
	canceled *telemetry.Counter // left the queue, context died
	waitSecs *telemetry.Histogram
}

// NewGate builds a gate from cfg (zero value → defaults), registering
// its instruments in reg.
func NewGate(cfg Config, reg *telemetry.Registry) *Gate {
	cfg = cfg.withDefaults()
	g := &Gate{
		cfg:      cfg,
		capacity: int64(cfg.MaxInFlight),
		granted: reg.Counter("atis_admission_requests_total",
			"Admission outcomes.", telemetry.L("outcome", "granted")),
		queued: reg.Counter("atis_admission_requests_total",
			"Admission outcomes.", telemetry.L("outcome", "queued")),
		shed: reg.Counter("atis_admission_requests_total",
			"Admission outcomes.", telemetry.L("outcome", "shed")),
		canceled: reg.Counter("atis_admission_requests_total",
			"Admission outcomes.", telemetry.L("outcome", "canceled")),
		waitSecs: reg.Histogram("atis_admission_wait_seconds",
			"Time requests spend parked in the admission queue.", nil),
	}
	reg.GaugeFunc("atis_admission_in_flight",
		"Semaphore units currently admitted.", func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(g.inFlight)
		})
	reg.GaugeFunc("atis_admission_queue_depth",
		"Requests parked in the admission queue.", func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.queue))
		})
	return g
}

// Config returns the gate's resolved configuration.
func (g *Gate) Config() Config { return g.cfg }

// Acquire admits a request of the given weight, blocking in FIFO order
// while the semaphore is full. It returns a release function that MUST
// be called exactly once, or an error: ErrShed when the wait queue is
// full, or the context's error (via ctx) when the caller's context dies
// while parked. Weights above capacity are clamped so oversized classes
// remain servable (they just run alone).
func (g *Gate) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > g.capacity {
		weight = g.capacity
	}
	admitted, w, err := g.admitOrPark(weight)
	if err != nil {
		g.shed.Inc()
		return nil, err
	}
	if admitted {
		g.granted.Inc()
		return func() { g.release(weight) }, nil
	}

	start := time.Now()
	select {
	case <-w.ready:
		g.waitSecs.Observe(time.Since(start).Seconds())
		g.queued.Inc()
		return func() { g.release(weight) }, nil
	case <-ctx.Done():
		if g.abandon(w) {
			// Granted in the race window: we hold capacity, give it
			// back (and wake whoever now fits).
			g.release(weight)
		}
		g.canceled.Inc()
		return nil, ctx.Err()
	}
}

// admitOrPark makes the under-lock admission decision: admit
// immediately only when nobody is parked ahead of us — the queue is
// strictly FIFO so a heavy waiter cannot be starved by a stream of
// light arrivals slipping past it — otherwise park a new waiter, or
// shed when the queue is at its bound.
//
//atis:hotpath
func (g *Gate) admitOrPark(weight int64) (admitted bool, w *waiter, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.queue) == 0 && g.inFlight+weight <= g.capacity {
		g.inFlight += weight
		return true, nil, nil
	}
	if len(g.queue) >= g.cfg.MaxQueue {
		return false, nil, ErrShed
	}
	//lint:ignore hotpath a waiter is allocated only when the request must park; grant and shed stay allocation-free
	w = &waiter{weight: weight, ready: make(chan struct{}, 1)}
	g.queue = append(g.queue, w)
	return false, w, nil
}

// abandon resolves the cancel/grant race for a parked waiter whose
// context died. It reports whether the waiter was granted in the race
// window — in which case the caller holds capacity and must release it.
func (g *Gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-w.ready:
		return true
	default:
		w.abandoned = true
		return false
	}
}

// release returns weight units, pops abandoned waiters, and grants
// ready ones in arrival order while capacity allows.
//
//atis:hotpath
func (g *Gate) release(weight int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inFlight -= weight
	for len(g.queue) > 0 {
		w := g.queue[0]
		if w.abandoned {
			g.queue[0] = nil
			g.queue = g.queue[1:]
			continue
		}
		if g.inFlight+w.weight > g.capacity {
			return
		}
		g.inFlight += w.weight
		g.queue[0] = nil
		g.queue = g.queue[1:]
		w.ready <- struct{}{}
	}
}

// Stats is the gate's state snapshot for /stats.
type Stats struct {
	// Capacity is the semaphore size in weight units.
	Capacity int `json:"capacity"`
	// InFlight is the units currently admitted.
	InFlight int `json:"inFlight"`
	// QueueDepth is the requests currently parked.
	QueueDepth int `json:"queueDepth"`
	// MaxQueue is the queue bound beyond which requests shed.
	MaxQueue int `json:"maxQueue"`
	// Granted counts immediate admissions; Queued, admissions after a
	// wait; Shed, queue-full rejections; Canceled, waiters whose
	// context died.
	Granted  uint64 `json:"granted"`
	Queued   uint64 `json:"queued"`
	Shed     uint64 `json:"shed"`
	Canceled uint64 `json:"canceled"`
	// DefaultBudgetMillis and MaxBudgetMillis echo the deadline policy.
	DefaultBudgetMillis int64 `json:"defaultBudgetMillis"`
	MaxBudgetMillis     int64 `json:"maxBudgetMillis"`
	// Degraded reports whether shed route requests may be answered
	// from the cache or CH index.
	Degraded bool `json:"degradedServing"`
}

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	inFlight, depth := g.inFlight, len(g.queue)
	g.mu.Unlock()
	return Stats{
		Capacity:            int(g.capacity),
		InFlight:            int(inFlight),
		QueueDepth:          depth,
		MaxQueue:            g.cfg.MaxQueue,
		Granted:             g.granted.Value(),
		Queued:              g.queued.Value(),
		Shed:                g.shed.Value(),
		Canceled:            g.canceled.Value(),
		DefaultBudgetMillis: g.cfg.DefaultBudget.Milliseconds(),
		MaxBudgetMillis:     g.cfg.MaxBudget.Milliseconds(),
		Degraded:            g.cfg.Degrade,
	}
}
