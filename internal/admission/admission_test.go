package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func newTestGate(t *testing.T, cfg Config) *Gate {
	t.Helper()
	return NewGate(cfg, telemetry.NewRegistry())
}

func TestImmediateGrant(t *testing.T) {
	g := newTestGate(t, Config{MaxInFlight: 2})
	release, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	st := g.Stats()
	if st.InFlight != 1 || st.Granted != 1 {
		t.Fatalf("after grant: %+v", st)
	}
	release()
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	g := newTestGate(t, Config{MaxInFlight: 1, MaxQueue: 1})
	rel1, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	// Second parks; run it in a goroutine so we can fill the queue.
	queued := make(chan func(), 1)
	go func() {
		rel, err := g.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
		}
		queued <- rel
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth == 1 })
	// Third finds the queue full and sheds.
	if _, err := g.Acquire(context.Background(), 1); !errors.Is(err, ErrShed) {
		t.Fatalf("third Acquire err = %v, want ErrShed", err)
	}
	if st := g.Stats(); st.Shed != 1 {
		t.Fatalf("shed counter: %+v", st)
	}
	rel1()
	rel2 := <-queued
	rel2()
	if st := g.Stats(); st.InFlight != 0 || st.Queued != 1 {
		t.Fatalf("final: %+v", st)
	}
}

func TestFIFOOrder(t *testing.T) {
	g := newTestGate(t, Config{MaxInFlight: 1, MaxQueue: 8})
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("queued Acquire %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}()
		// Serialise arrival so FIFO order is well-defined.
		waitFor(t, func() bool { return g.Stats().QueueDepth == i+1 })
	}
	rel()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want arrival order", order)
		}
	}
}

func TestCanceledWhileQueued(t *testing.T) {
	g := newTestGate(t, Config{MaxInFlight: 1, MaxQueue: 8})
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 1)
		errc <- err
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Acquire err = %v, want context.Canceled", err)
	}
	rel()
	// The abandoned waiter must not have consumed capacity: a fresh
	// request is admitted immediately.
	rel2, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("Acquire after cancel: %v", err)
	}
	rel2()
	if st := g.Stats(); st.InFlight != 0 || st.Canceled != 1 {
		t.Fatalf("final: %+v", st)
	}
}

func TestWeightClampAndHeavyRequests(t *testing.T) {
	g := newTestGate(t, Config{MaxInFlight: 2, MaxQueue: 8})
	// Weight above capacity clamps: the request runs alone instead of
	// deadlocking forever.
	rel, err := g.Acquire(context.Background(), 99)
	if err != nil {
		t.Fatalf("heavy Acquire: %v", err)
	}
	if st := g.Stats(); st.InFlight != 2 {
		t.Fatalf("clamped in-flight: %+v", st)
	}
	rel()
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestConcurrentStressNeverExceedsCapacity(t *testing.T) {
	const capacity = 3
	g := newTestGate(t, Config{MaxInFlight: capacity, MaxQueue: 1024})
	var concurrent, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			c := concurrent.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			concurrent.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak concurrency %d exceeds capacity %d", p, capacity)
	}
	if st := g.Stats(); st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("final: %+v", st)
	}
}

func TestClassFor(t *testing.T) {
	it := ClassFor(core.Iterative)
	if it.Weight != 2 || it.MaxExpansions <= 0 {
		t.Fatalf("iterative class %+v: want weight 2 and a budget", it)
	}
	chc := ClassFor(core.CH)
	if chc.Weight != 1 || chc.MaxExpansions != 0 {
		t.Fatalf("ch class %+v: want weight 1 unbudgeted", chc)
	}
	bf := ClassFor(core.Dijkstra)
	if bf.Weight != 1 || bf.MaxExpansions <= it.MaxExpansions {
		t.Fatalf("best-first class %+v: iterative budget must be tightest", bf)
	}
}

func TestConfigDefaults(t *testing.T) {
	g := newTestGate(t, Config{})
	st := g.Stats()
	if st.Capacity < 2 {
		t.Fatalf("default capacity %d, want at least 2", st.Capacity)
	}
	if st.MaxQueue < 64 {
		t.Fatalf("default max queue %d, want at least 64", st.MaxQueue)
	}
	if st.DefaultBudgetMillis != (10 * time.Second).Milliseconds() {
		t.Fatalf("default budget %dms", st.DefaultBudgetMillis)
	}
}

// waitFor polls cond for up to a second; the gate's queue transitions
// are asynchronous but fast.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(time.Millisecond)
	}
}
