package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
	"repro/internal/route"
)

// newLifecycleServer builds a server over g with an explicit admission
// config, returning both the Server (for gate access) and the test
// listener.
func newLifecycleServer(t *testing.T, g *graph.Graph, cfg admission.Config, enableCH bool) (*Server, *httptest.Server) {
	t.Helper()
	svc := route.NewService(g)
	if enableCH {
		if err := svc.EnableCH(); err != nil {
			t.Fatalf("EnableCH: %v", err)
		}
	}
	api := NewServer(svc, WithAdmission(cfg))
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return api, ts
}

// errorEnvelope decodes the structured error body.
type errorEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"requestId"`
	} `json:"error"`
}

func decodeError(t *testing.T, resp *http.Response) errorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return env
}

// lifecycleStats reads the /v1/stats lifecycle block.
func lifecycleStats(t *testing.T, baseURL string) map[string]uint64 {
	t.Helper()
	var body struct {
		Lifecycle map[string]uint64 `json:"lifecycle"`
	}
	resp := getJSON(t, baseURL+"/v1/stats", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	return body.Lifecycle
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// saturate fills the gate's capacity and its wait queue so the next
// admission sheds, returning a drain func.
func saturate(t *testing.T, api *Server) (drain func()) {
	t.Helper()
	gate := api.Admission()
	rel, err := gate.Acquire(context.Background(), int64(gate.Stats().Capacity))
	if err != nil {
		t.Fatalf("saturating gate: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan struct{})
	for i := 0; i < gate.Stats().MaxQueue; i++ {
		go func() {
			defer func() { parked <- struct{}{} }()
			if rel, err := gate.Acquire(ctx, 1); err == nil {
				rel()
			}
		}()
	}
	waitUntil(t, func() bool { return gate.Stats().QueueDepth == gate.Stats().MaxQueue })
	return func() {
		cancel()
		for i := 0; i < gate.Stats().MaxQueue; i++ {
			<-parked
		}
		rel()
	}
}

// TestQueueFullSheds503 is the load-shedding contract: a saturated
// server (capacity and queue both full) rejects immediately with 503,
// a Retry-After hint, the overloaded error code, and a bumped shed
// counter.
func TestQueueFullSheds503(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	api, ts := newLifecycleServer(t, g, admission.Config{MaxInFlight: 1, MaxQueue: 1}, false)
	drain := saturate(t, api)
	defer drain()

	resp, err := http.Get(ts.URL + "/v1/route?from=G&to=D")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	}
	env := decodeError(t, resp)
	if env.Error.Code != CodeOverloaded {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeOverloaded)
	}
	if env.Error.RequestID == "" {
		t.Error("error envelope without requestId")
	}
	if shed := api.Admission().Stats().Shed; shed < 1 {
		t.Errorf("shed counter %d, want ≥ 1", shed)
	}
}

// TestDegradedServingFromCH: with -degrade on, a shed route request is
// answered from the CH index — 200, degraded:true — instead of a 503.
func TestDegradedServingFromCH(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	api, ts := newLifecycleServer(t, g,
		admission.Config{MaxInFlight: 1, MaxQueue: 1, Degrade: true}, true)
	drain := saturate(t, api)
	defer drain()

	var rr RouteResponse
	resp := getJSON(t, ts.URL+"/v1/route?from=G&to=D", &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (degraded)", resp.StatusCode)
	}
	if !rr.Degraded || !rr.Found || rr.Cost <= 0 {
		t.Fatalf("degraded response: %+v", rr)
	}
	if rr.Algorithm != "ch" {
		t.Errorf("degraded algorithm %q, want ch (index-served)", rr.Algorithm)
	}
	if n := lifecycleStats(t, ts.URL)["degraded"]; n < 1 {
		t.Errorf("degraded counter %d, want ≥ 1", n)
	}
}

// TestDegradedServingFromCache: a warm cache entry also satisfies a shed
// request, even without a CH index.
func TestDegradedServingFromCache(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	api, ts := newLifecycleServer(t, g,
		admission.Config{MaxInFlight: 1, MaxQueue: 1, Degrade: true}, false)

	// Warm the cache while the gate is open.
	var warm RouteResponse
	if resp := getJSON(t, ts.URL+"/v1/route?from=G&to=D&algo=dijkstra", &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request status %d", resp.StatusCode)
	}

	drain := saturate(t, api)
	defer drain()

	var rr RouteResponse
	resp := getJSON(t, ts.URL+"/v1/route?from=G&to=D&algo=dijkstra", &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (degraded from cache)", resp.StatusCode)
	}
	if !rr.Degraded || !rr.Found || rr.Cost != warm.Cost {
		t.Fatalf("degraded response: %+v (warm cost %v)", rr, warm.Cost)
	}

	// A pair that is neither cached nor CH-servable still sheds.
	resp2, err := http.Get(ts.URL + "/v1/route?from=A&to=D&algo=dijkstra")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("uncached pair status %d, want 503", resp2.StatusCode)
	}
	resp2.Body.Close()
}

// TestQueuedDeadlineReturns504: a request whose ?budget_ms= expires
// while parked in the admission queue gets the deadline_exceeded
// envelope, deterministically (the gate is saturated but the queue has
// room, so the request parks until its 1ms budget runs out).
func TestQueuedDeadlineReturns504(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	api, ts := newLifecycleServer(t, g, admission.Config{MaxInFlight: 1, MaxQueue: 8}, false)
	gate := api.Admission()
	rel, err := gate.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	resp, err := http.Get(ts.URL + "/v1/route?from=G&to=D&budget_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	env := decodeError(t, resp)
	if env.Error.Code != CodeDeadlineExceeded {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeDeadlineExceeded)
	}
	if n := lifecycleStats(t, ts.URL)["deadlineExceeded"]; n < 1 {
		t.Errorf("deadlineExceeded counter %d, want ≥ 1", n)
	}
}

// bigGrid is the 250k-node grid shared by the slow-search lifecycle
// tests. The size matters beyond realism: on a single-core machine the
// deadline timer's callback cannot run until the scheduler preempts the
// searching goroutine (~10ms), so only a search comfortably longer than
// that can observe a mid-flight expiry at all.
var bigGrid = sync.OnceValue(func() *graph.Graph {
	return gridgen.MustGenerate(gridgen.Config{K: 500, Model: gridgen.Variance, Seed: 7})
})

// TestMidSearchBudgetReturns504: on a search far longer than the
// scheduler's preemption quantum (Yen's alternates on the big grid runs
// a family of full Dijkstras — hundreds of milliseconds), the in-flight
// kernels observe the expired 1ms budget and the handler maps it to 504.
// A single Iterative pass is not long enough here: at ~25ms it races the
// single-core timer delivery (~10-20ms) and can win, finish, and poison
// the remaining attempts through the route cache.
func TestMidSearchBudgetReturns504(t *testing.T) {
	g := bigGrid()
	_, ts := newLifecycleServer(t, g, admission.Config{}, false)

	last := ""
	for attempt := 0; attempt < 5; attempt++ {
		resp, err := http.Get(ts.URL + "/v1/alternates?from=0&to=249999&k=8&budget_ms=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusGatewayTimeout {
			env := decodeError(t, resp)
			if env.Error.Code != CodeDeadlineExceeded {
				t.Errorf("error code %q, want %q", env.Error.Code, CodeDeadlineExceeded)
			}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		last = resp.Status + " " + string(b)
	}
	t.Fatalf("no 504 in 5 attempts; last response: %s", last)
}

// TestCanceledClientRecords499: a client that disconnects mid-search is
// recorded under the canceled lifecycle outcome (the 499 itself is never
// seen by anyone — the connection is gone).
func TestCanceledClientRecords499(t *testing.T) {
	// Yen's alternates on the 250k-node grid runs a family of Dijkstras —
	// hundreds of milliseconds of search — so the disconnect's multi-hop
	// delivery (client timer, TCP close, the server's background reader,
	// context propagation) lands mid-flight even on one core.
	g := bigGrid()
	_, ts := newLifecycleServer(t, g, admission.Config{}, false)

	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/alternates?from=0&to=249999&k=8", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close() // finished before the disconnect; retry
		}
		cancel()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if lifecycleStats(t, ts.URL)["canceled"] >= 1 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Fatal("canceled lifecycle counter never incremented")
}

// TestBudgetMsValidation: garbage budget_ms is a 400 with the
// bad_request code, before any search work.
func TestBudgetMsValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, bad := range []string{"abc", "0", "-5"} {
		resp, err := http.Get(ts.URL + "/v1/route?from=G&to=D&budget_ms=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("budget_ms=%s: status %d, want 400", bad, resp.StatusCode)
		}
		env := decodeError(t, resp)
		if env.Error.Code != CodeBadRequest {
			t.Errorf("budget_ms=%s: code %q, want %q", bad, env.Error.Code, CodeBadRequest)
		}
	}
}

// TestV1Enveloped405: wrong-method requests on the versioned surface get
// the structured envelope with an Allow header, not the mux's plain 405.
func TestV1Enveloped405(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/route", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("Allow header %q, want GET", allow)
	}
	env := decodeError(t, resp)
	if env.Error.Code != CodeMethodNotAllowed {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeMethodNotAllowed)
	}
}

// TestV1ErrorCodes spot-checks the code vocabulary on the versioned
// surface.
func TestV1ErrorCodes(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	_, ts := newLifecycleServer(t, g, admission.Config{}, false)
	cases := []struct {
		url    string
		status int
		code   string
	}{
		{"/v1/route?from=nowhere&to=D", http.StatusBadRequest, CodeBadNode},
		{"/v1/route?from=G&to=D&algo=quantum", http.StatusBadRequest, CodeBadAlgo},
		{"/v1/route?from=G&to=D&weight=-1", http.StatusBadRequest, CodeBadRequest},
	}
	// no_route needs a truly unreachable pair: a lake node with no roads.
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 {
			cases = append(cases, struct {
				url    string
				status int
				code   string
			}{"/v1/directions?from=G&to=" + strconv.Itoa(int(u)), http.StatusNotFound, CodeNoRoute})
			break
		}
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Errorf("%s: status %d, want %d (%s)", tc.url, resp.StatusCode, tc.status, b)
			continue
		}
		env := decodeError(t, resp)
		if env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.url, env.Error.Code, tc.code)
		}
	}
}

// TestLegacyPathsDeprecatedButServing: the unversioned aliases still
// serve — identical payloads — while carrying the Deprecation header,
// the successor Link, and bumping the per-path legacy counter.
func TestLegacyPathsDeprecatedButServing(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/route?from=G&to=D")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /route status %d", resp.StatusCode)
	}
	if d := resp.Header.Get("Deprecation"); d != "true" {
		t.Errorf("Deprecation header %q, want true", d)
	}
	if l := resp.Header.Get("Link"); !strings.Contains(l, "/v1/route") || !strings.Contains(l, "successor-version") {
		t.Errorf("Link header %q, want successor-version pointing at /v1/route", l)
	}

	// The versioned path carries no deprecation marker.
	resp2, err := http.Get(ts.URL + "/v1/route?from=G&to=D")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if d := resp2.Header.Get("Deprecation"); d != "" {
		t.Errorf("/v1/route unexpectedly deprecated: %q", d)
	}

	metrics, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	text, _ := io.ReadAll(metrics.Body)
	if !strings.Contains(string(text), `atis_http_legacy_path_total{path="/route"}`) {
		t.Error("metrics missing atis_http_legacy_path_total for /route")
	}
}

// TestBatchUnfoundPopulatesAlgorithmAndIterations: an unreachable pair's
// batch item must still report which algorithm ran and how many
// iterations it spent — the fields the legacy handler used to zero out.
func TestBatchUnfoundPopulatesAlgorithmAndIterations(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	isolated := graph.Invalid
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 {
			isolated = u
			break
		}
	}
	if isolated == graph.Invalid {
		t.Skip("no isolated node on this map")
	}
	_, ts := newLifecycleServer(t, g, admission.Config{}, false)

	var out struct {
		Routes []struct {
			RouteResponse
			Error string `json:"error"`
		} `json:"routes"`
	}
	body := `{"pairs":[{"from":"G","to":"` + strconv.Itoa(int(isolated)) + `"}],"algo":"dijkstra"}`
	resp := postJSON(t, ts.URL+"/v1/routes/batch", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Routes) != 1 {
		t.Fatalf("%d routes, want 1", len(out.Routes))
	}
	item := out.Routes[0]
	if item.Found || item.Cost != -1 {
		t.Fatalf("unreachable pair: %+v", item)
	}
	if item.Algorithm != "dijkstra" {
		t.Errorf("algorithm %q, want dijkstra", item.Algorithm)
	}
	if item.Iterations == 0 {
		t.Error("iterations = 0; the search's work went unreported")
	}
}
