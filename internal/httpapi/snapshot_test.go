package httpapi

import (
	"net/http"
	"strconv"
	"testing"
)

// TestSnapshotHeaderAdvancesOnMutation pins the per-response snapshot
// identity: every response carries X-ATIS-Snapshot, and a traffic
// mutation publishes a new world, so the header value strictly
// increases across the write.
func TestSnapshotHeaderAdvancesOnMutation(t *testing.T) {
	ts := newTestServer(t)

	resp := getJSON(t, ts.URL+"/v1/route?from=0&to=5", nil)
	before, err := strconv.ParseUint(resp.Header.Get("X-ATIS-Snapshot"), 10, 64)
	if err != nil {
		t.Fatalf("X-ATIS-Snapshot %q: %v", resp.Header.Get("X-ATIS-Snapshot"), err)
	}

	if resp := postJSON(t, ts.URL+"/v1/traffic", `{"x":16,"y":16,"radius":5,"factor":4}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic: %d", resp.StatusCode)
	}

	resp = getJSON(t, ts.URL+"/v1/route?from=0&to=5", nil)
	after, err := strconv.ParseUint(resp.Header.Get("X-ATIS-Snapshot"), 10, 64)
	if err != nil {
		t.Fatalf("X-ATIS-Snapshot %q: %v", resp.Header.Get("X-ATIS-Snapshot"), err)
	}
	if after <= before {
		t.Fatalf("snapshot header did not advance across a mutation: %d → %d", before, after)
	}
}

// TestSnapshotEndpoint checks GET /v1/snapshot returns the published
// identity with the same generation the response header carries, plus
// the CH readiness block.
func TestSnapshotEndpoint(t *testing.T) {
	ts := newTestServer(t)

	var body struct {
		Version        uint64         `json:"version"`
		Generation     uint64         `json:"generation"`
		PublishedAt    string         `json:"publishedAt"`
		CostGeneration uint64         `json:"costGeneration"`
		CH             map[string]any `json:"ch"`
	}
	resp := getJSON(t, ts.URL+"/v1/snapshot", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/snapshot: %d", resp.StatusCode)
	}
	if body.Generation == 0 {
		t.Error("snapshot generation is 0; the seed snapshot publishes at 1")
	}
	if body.PublishedAt == "" {
		t.Error("snapshot publishedAt missing")
	}
	if body.CH == nil {
		t.Error("snapshot ch block missing")
	} else if _, ok := body.CH["ready"]; !ok {
		t.Errorf("snapshot ch block lacks ready: %v", body.CH)
	}
	hdr := resp.Header.Get("X-ATIS-Snapshot")
	if hdr != strconv.FormatUint(body.Generation, 10) {
		t.Errorf("X-ATIS-Snapshot %q disagrees with body generation %d", hdr, body.Generation)
	}

	// The same identity block appears in /v1/stats, under "snapshot".
	var stats struct {
		CostGeneration uint64 `json:"costGeneration"`
		Snapshot       struct {
			Generation  uint64 `json:"generation"`
			PublishedAt string `json:"publishedAt"`
		} `json:"snapshot"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Snapshot.Generation == 0 || stats.Snapshot.PublishedAt == "" {
		t.Errorf("stats snapshot block incomplete: %+v", stats.Snapshot)
	}

	// /v1/snapshot is new with /v1 — no unversioned alias exists.
	if resp := getJSON(t, ts.URL+"/snapshot", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /snapshot (no legacy alias expected): %d", resp.StatusCode)
	}
}

// TestLegacyAliasDeprecationHeaders pins the consolidation satellite:
// every unversioned alias is served through one deprecation funnel that
// stamps Deprecation, a successor Link, and the RFC 8594 Sunset date,
// while the /v1 path stays clean.
func TestLegacyAliasDeprecationHeaders(t *testing.T) {
	ts := newTestServer(t)

	legacy := getJSON(t, ts.URL+"/route?from=0&to=5", nil)
	if legacy.StatusCode != http.StatusOK {
		t.Fatalf("GET /route: %d", legacy.StatusCode)
	}
	if got := legacy.Header.Get("Deprecation"); got != "true" {
		t.Errorf("legacy Deprecation = %q, want \"true\"", got)
	}
	if got := legacy.Header.Get("Link"); got != `</v1/route>; rel="successor-version"` {
		t.Errorf("legacy Link = %q", got)
	}
	if got := legacy.Header.Get("Sunset"); got != legacySunset {
		t.Errorf("legacy Sunset = %q, want %q", got, legacySunset)
	}

	// Wrong-method requests on a legacy path go through the same funnel.
	wrongMethod := postJSON(t, ts.URL+"/route", "{}", nil)
	if wrongMethod.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /route: %d", wrongMethod.StatusCode)
	}
	if wrongMethod.Header.Get("Deprecation") != "true" || wrongMethod.Header.Get("Sunset") == "" {
		t.Error("legacy 405 path skipped the deprecation funnel")
	}

	v1 := getJSON(t, ts.URL+"/v1/route?from=0&to=5", nil)
	if v1.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/route: %d", v1.StatusCode)
	}
	for _, h := range []string{"Deprecation", "Link", "Sunset"} {
		if got := v1.Header.Get(h); got != "" {
			t.Errorf("/v1 path unexpectedly carries %s: %q", h, got)
		}
	}
}
