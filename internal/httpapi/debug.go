package httpapi

import (
	"fmt"
	"net/http"
	"strconv"
)

// defaultTraceListLen is how many traces each list of /v1/debug/traces
// returns when the client does not ask with ?n=.
const defaultTraceListLen = 20

// maxTraceListLen caps ?n=; the ring holds a bounded set anyway, the cap
// just keeps one debug call from serialising the whole buffer twice.
const maxTraceListLen = 100

// handleDebugTraces lists captured traces:
// GET /v1/debug/traces[?n=20] → {"enabled":…,"recent":[…],"slowest":[…]}.
// recent is the head-sampled ring newest-first; slowest is every trace
// that crossed the slow threshold, worst-first. Each summary's traceId
// keys the detail endpoint.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	n := defaultTraceListLen
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 {
			s.apiError(w, r, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("bad n %q (want a positive integer)", ns))
			return
		}
		n = min(v, maxTraceListLen)
	}
	s.writeJSON(w, r, map[string]any{
		"enabled": s.tracer.Enabled(),
		"recent":  s.tracer.Recent(n),
		"slowest": s.tracer.Slowest(n),
	})
}

// handleDebugTrace returns one captured trace's full span tree:
// GET /v1/debug/traces/{id}. 404s for ids never captured or already
// evicted from the ring — capture is sampled and bounded, absence of a
// trace does not mean the request never happened.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.tracer.Get(id)
	if !ok {
		s.apiError(w, r, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("trace %q not captured (tracing disabled, unsampled, or evicted)", id))
		return
	}
	s.writeJSON(w, r, snap)
}
