package httpapi

import (
	"net/http"
	"testing"
)

type batchRouteBody struct {
	Found bool    `json:"found"`
	Cost  float64 `json:"cost"`
	Nodes []int32 `json:"nodes"`
	Error string  `json:"error"`
}

type batchBody struct {
	Count  int              `json:"count"`
	Routes []batchRouteBody `json:"routes"`
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var body batchBody
	resp := postJSON(t, ts.URL+"/routes/batch",
		`{"pairs":[{"from":"A","to":"B"},{"from":"B","to":"A"},{"from":"A","to":"nowhere"}],"algo":"dijkstra"}`,
		&body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Count != 3 || len(body.Routes) != 3 {
		t.Fatalf("count = %d routes = %d, want 3", body.Count, len(body.Routes))
	}
	if !body.Routes[0].Found || body.Routes[0].Cost <= 0 {
		t.Fatalf("route 0: %+v", body.Routes[0])
	}
	if !body.Routes[1].Found {
		t.Fatalf("route 1: %+v", body.Routes[1])
	}
	if body.Routes[2].Error == "" || body.Routes[2].Cost != -1 {
		t.Fatalf("route 2 must fail per-pair: %+v", body.Routes[2])
	}

	// A repeat of the same batch is served from the route cache.
	postJSON(t, ts.URL+"/routes/batch", `{"pairs":[{"from":"A","to":"B"}]}`, nil)
	postJSON(t, ts.URL+"/routes/batch", `{"pairs":[{"from":"A","to":"B"}]}`, nil)
	var stats struct {
		CacheHits      uint64 `json:"cacheHits"`
		CacheMisses    uint64 `json:"cacheMisses"`
		CostGeneration uint64 `json:"costGeneration"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.CacheHits == 0 {
		t.Fatalf("expected cache hits after repeated batch, got %+v", stats)
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	if resp := postJSON(t, ts.URL+"/routes/batch", `{"pairs":[]}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/routes/batch", `{"pairs":[{"from":"A","to":"B"}],"algo":"warp-drive"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad algo: status = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/routes/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d", resp.StatusCode)
	}
}

func TestStatsGenerationTracksTraffic(t *testing.T) {
	ts := newTestServer(t)
	var before, after struct {
		CostGeneration uint64 `json:"costGeneration"`
	}
	getJSON(t, ts.URL+"/stats", &before)
	postJSON(t, ts.URL+"/traffic", `{"x":16,"y":16,"radius":100,"factor":2}`, nil)
	getJSON(t, ts.URL+"/stats", &after)
	if after.CostGeneration != before.CostGeneration+1 {
		t.Fatalf("generation %d → %d, want +1", before.CostGeneration, after.CostGeneration)
	}
}
