package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpls"
	"repro/internal/route"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := mpls.MustGenerate(mpls.Config{})
	ts := httptest.NewServer(NewServer(route.NewService(g)).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestRouteEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var rr RouteResponse
	resp := getJSON(t, ts.URL+"/route?from=G&to=D", &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !rr.Found || rr.Cost <= 0 || len(rr.Nodes) < 2 {
		t.Errorf("route response: %+v", rr)
	}
	if rr.Algorithm != "astar-euclidean" {
		t.Errorf("default algorithm %q", rr.Algorithm)
	}
	if rr.Evaluation == nil || rr.Evaluation.Hops != len(rr.Nodes)-1 {
		t.Errorf("evaluation: %+v", rr.Evaluation)
	}
}

func TestRouteEndpointNumericIDsAndAlgo(t *testing.T) {
	ts := newTestServer(t)
	var rr RouteResponse
	getJSON(t, ts.URL+"/route?from=0&to=1&algo=dijkstra", &rr)
	if rr.Algorithm != "dijkstra" {
		t.Errorf("algorithm %q", rr.Algorithm)
	}
}

func TestRouteEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, q := range []string{
		"from=ZZZ&to=D",
		"from=G&to=99999",
		"from=G&to=D&algo=quantum",
		"from=G&to=D&weight=-2",
		"from=G&to=D&weight=abc",
	} {
		resp := getJSON(t, ts.URL+"/route?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var rr RouteResponse
	getJSON(t, ts.URL+"/route?from=G&to=D", &rr)

	nodes, _ := json.Marshal(map[string]any{"nodes": rr.Nodes})
	var ev Evaluation
	resp := postJSON(t, ts.URL+"/evaluate", string(nodes), &ev)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ev.Hops != len(rr.Nodes)-1 || ev.CongestionRatio != 1 {
		t.Errorf("evaluation: %+v", ev)
	}
	// Method and body validation.
	if resp := getJSON(t, ts.URL+"/evaluate", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /evaluate: %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/evaluate", "{bad json", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/evaluate", `{"nodes":[0,999]}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-path: %d", resp.StatusCode)
	}
}

func TestDisplayEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/display?from=G&to=D")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64*1024)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{"S", "D", "."} {
		if !strings.Contains(body, want) {
			t.Errorf("display missing %q", want)
		}
	}
}

func TestTrafficRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	var before RouteResponse
	getJSON(t, ts.URL+"/route?from=C&to=D&algo=dijkstra", &before)

	var applied map[string]int
	resp := postJSON(t, ts.URL+"/traffic", `{"x":16,"y":16,"radius":5,"factor":4}`, &applied)
	if resp.StatusCode != http.StatusOK || applied["affectedEdges"] == 0 {
		t.Fatalf("traffic: %d %v", resp.StatusCode, applied)
	}

	var during RouteResponse
	getJSON(t, ts.URL+"/route?from=C&to=D&algo=dijkstra", &during)
	if during.Cost <= before.Cost {
		t.Errorf("congestion did not raise the best cost: %v vs %v", during.Cost, before.Cost)
	}

	resp = postJSON(t, ts.URL+"/traffic/reset", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reset: %d", resp.StatusCode)
	}
	var after RouteResponse
	getJSON(t, ts.URL+"/route?from=C&to=D&algo=dijkstra", &after)
	if after.Cost != before.Cost {
		t.Errorf("reset did not restore: %v vs %v", after.Cost, before.Cost)
	}

	// Validation paths.
	if resp := getJSON(t, ts.URL+"/traffic", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /traffic: %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/traffic", `{"factor":-1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative factor: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/traffic/reset", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /traffic/reset: %d", resp.StatusCode)
	}
}

func TestTrafficBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var before RouteResponse
	getJSON(t, ts.URL+"/v1/route?from=C&to=D&algo=dijkstra", &before)
	if !before.Found {
		t.Fatal("no baseline route")
	}

	// Double every edge of the current best path in one batch: the new
	// best cost must rise (any alternate was already no cheaper).
	type change struct {
		From   string   `json:"from"`
		To     string   `json:"to"`
		Cost   *float64 `json:"cost,omitempty"`
		Factor *float64 `json:"factor,omitempty"`
	}
	double := 2.0
	var changes []change
	for i := 0; i+1 < len(before.Nodes); i++ {
		changes = append(changes, change{
			From:   strconv.Itoa(int(before.Nodes[i])),
			To:     strconv.Itoa(int(before.Nodes[i+1])),
			Factor: &double,
		})
	}
	body, _ := json.Marshal(map[string]any{"changes": changes})
	var applied map[string]int
	resp := postJSON(t, ts.URL+"/v1/traffic/batch", string(body), &applied)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	if applied["affectedEdges"] < len(changes) || applied["changes"] != len(changes) {
		t.Fatalf("batch response: %v (want ≥%d affected)", applied, len(changes))
	}

	var during RouteResponse
	getJSON(t, ts.URL+"/v1/route?from=C&to=D&algo=dijkstra", &during)
	if during.Cost <= before.Cost {
		t.Errorf("batch congestion did not raise the best cost: %v vs %v", during.Cost, before.Cost)
	}

	postJSON(t, ts.URL+"/v1/traffic/reset", "", nil)
	var after RouteResponse
	getJSON(t, ts.URL+"/v1/route?from=C&to=D&algo=dijkstra", &after)
	if after.Cost != before.Cost {
		t.Errorf("reset did not restore: %v vs %v", after.Cost, before.Cost)
	}

	// Validation paths: all leave the graph untouched.
	for name, bad := range map[string]string{
		"empty batch":     `{"changes":[]}`,
		"bad json":        `{nope`,
		"both set":        `{"changes":[{"from":"C","to":"D","cost":1,"factor":2}]}`,
		"neither set":     `{"changes":[{"from":"C","to":"D"}]}`,
		"unknown node":    `{"changes":[{"from":"ZZZ","to":"D","cost":1}]}`,
		"negative cost":   `{"changes":[{"from":"C","to":"D","cost":-1}]}`,
		"negative factor": `{"changes":[{"from":"C","to":"D","factor":-1}]}`,
	} {
		if resp := postJSON(t, ts.URL+"/v1/traffic/batch", bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts.URL+"/v1/traffic/batch", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/traffic/batch: %d", resp.StatusCode)
	}
	var final RouteResponse
	getJSON(t, ts.URL+"/v1/route?from=C&to=D&algo=dijkstra", &final)
	if final.Cost != before.Cost {
		t.Errorf("rejected batches mutated the graph: %v vs %v", final.Cost, before.Cost)
	}
}

func TestReachableEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Count int                `json:"count"`
		Nodes map[string]float64 `json:"nodes"`
	}
	resp := getJSON(t, ts.URL+"/reachable?from=G&budget=3", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Count == 0 || out.Count != len(out.Nodes) {
		t.Errorf("reachable: %+v", out)
	}
	for _, c := range out.Nodes {
		if c > 3 {
			t.Errorf("cost %v above budget", c)
		}
	}
	if resp := getJSON(t, ts.URL+"/reachable?from=G&budget=oops", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad budget: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/reachable?from=ZZZ&budget=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad origin: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/reachable?from=G&budget=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative budget: %d", resp.StatusCode)
	}
}

func TestDirectionsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Cost  float64 `json:"cost"`
		Steps []struct {
			Action   string  `json:"action"`
			Heading  string  `json:"heading"`
			Distance float64 `json:"distance"`
		} `json:"steps"`
	}
	resp := getJSON(t, ts.URL+"/directions?from=E&to=F", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Steps) < 2 {
		t.Fatalf("steps: %+v", out.Steps)
	}
	if out.Steps[0].Action != "depart" || out.Steps[len(out.Steps)-1].Action != "arrive" {
		t.Errorf("bookends: %+v", out.Steps)
	}
	if resp := getJSON(t, ts.URL+"/directions?from=ZZZ&to=F", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad origin: %d", resp.StatusCode)
	}
}

func TestAlternatesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Count  int `json:"count"`
		Routes []struct {
			Cost  float64 `json:"cost"`
			Nodes []int32 `json:"nodes"`
		} `json:"routes"`
	}
	resp := getJSON(t, ts.URL+"/alternates?from=G&to=D&k=3", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Count != 3 || len(out.Routes) != 3 {
		t.Fatalf("alternates: %+v", out)
	}
	for i := 1; i < len(out.Routes); i++ {
		if out.Routes[i].Cost < out.Routes[i-1].Cost {
			t.Errorf("alternates out of order: %v", out.Routes)
		}
	}
	if resp := getJSON(t, ts.URL+"/alternates?from=G&to=D&k=99", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge k: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/alternates?from=G&to=D&k=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad k: %d", resp.StatusCode)
	}
}

func TestMapEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var m struct {
		Nodes     int              `json:"nodes"`
		Edges     int              `json:"edges"`
		Landmarks map[string]int32 `json:"landmarks"`
	}
	getJSON(t, ts.URL+"/map", &m)
	if m.Nodes != 1089 || m.Edges < 3000 {
		t.Errorf("map meta: %+v", m)
	}
	if len(m.Landmarks) != 7 {
		t.Errorf("landmarks: %v", m.Landmarks)
	}
}

func TestNoRouteReportsMinusOne(t *testing.T) {
	// Lake nodes are isolated; routing to one yields found=false, cost -1.
	g := mpls.MustGenerate(mpls.Config{})
	isolated := graph.Invalid
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 {
			isolated = u
			break
		}
	}
	if isolated == graph.Invalid {
		t.Skip("no isolated node on this map")
	}
	ts := httptest.NewServer(NewServer(route.NewService(g)).Handler())
	defer ts.Close()
	var rr RouteResponse
	getJSON(t, ts.URL+"/route?from=G&to="+strconv.Itoa(int(isolated)), &rr)
	if rr.Found || rr.Cost != -1 {
		t.Errorf("unreachable route: %+v", rr)
	}
}
