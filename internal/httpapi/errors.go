package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Error codes of the structured error envelope. Every non-2xx response
// body is {"error":{"code":…,"message":…,"requestId":…}}; the code is
// the machine-readable field clients branch on, the message is for
// humans, and the requestId joins the failure to the server's log line.
const (
	// CodeBadNode: an endpoint specifier resolved to no node (400).
	CodeBadNode = "bad_node"
	// CodeBadAlgo: an unknown algorithm name (400).
	CodeBadAlgo = "bad_algo"
	// CodeBadRequest: any other input validation failure (400).
	CodeBadRequest = "bad_request"
	// CodeNoRoute: the endpoints are valid but no path connects them (404).
	CodeNoRoute = "no_route"
	// CodeNotFound: the named resource does not exist — an unknown or
	// evicted trace id on the debug endpoints (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: wrong HTTP method for the path (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded: admission queue full, request shed (503 + Retry-After).
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the server-side budget (default or
	// ?budget_ms=) expired before the search finished (504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the client went away mid-search (499, never seen by
	// the client — it is for the access log and metrics).
	CodeCanceled = "canceled"
	// CodeInternal: unexpected server-side failure (500).
	CodeInternal = "internal"
)

// StatusClientClosedRequest is the nginx-convention status for requests
// aborted by the client; net/http has no name for it.
const StatusClientClosedRequest = 499

// ErrorBody is the inner object of the error envelope.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"requestId"`
}

// codedError tags an error with its envelope code so parsing helpers can
// pick the code where the failure is diagnosed rather than threading it
// through every return path.
type codedError struct {
	code string
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// withCode tags err with an envelope code.
func withCode(code string, err error) error { return &codedError{code: code, err: err} }

// codeOf extracts the tagged code, or fallback when err carries none.
func codeOf(err error, fallback string) string {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return fallback
}

// apiError writes the structured error envelope. code may be "" to use
// the code tagged on err (falling back to CodeBadRequest).
func (s *Server) apiError(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	if code == "" {
		code = codeOf(err, CodeBadRequest)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]ErrorBody{"error": {
		Code:      code,
		Message:   err.Error(),
		RequestID: RequestID(r.Context()),
	}}
	if encErr := json.NewEncoder(w).Encode(body); encErr != nil {
		s.log.Warn("encoding error response", "request_id", RequestID(r.Context()), "err", encErr)
	}
}
