package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ctxKey is the private type for request-scoped context values.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the trace id assigned to the request, or "" outside an
// instrumented handler. The same id is echoed to the client in the
// X-Request-ID response header, so a traveller's complaint and the server's
// structured log line can be joined on it.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// requestIDSeq disambiguates ids if the random source ever fails.
var requestIDSeq atomic.Uint64

// newRequestID returns a 16-hex-char random trace id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestIDSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and body size for the access
// log and the status-code counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps one endpoint with the serving-stack middleware:
//
//   - a per-request trace id, honoured from an incoming X-Request-ID header
//     or freshly generated, echoed in the response and stored in the
//     request context for handlers and log lines;
//   - atis_http_requests_total{path,method,code}, an
//     atis_http_request_seconds{path} latency histogram, and the
//     atis_http_in_flight gauge;
//   - one structured access-log line per request.
//
// pattern is the mux registration pattern, used as the path label so metric
// cardinality stays bounded by the route table, not by client input.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	latency := s.reg.Histogram("atis_http_request_seconds",
		"HTTP request latency.", nil, telemetry.L("path", pattern))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))

		s.inFlight.Inc()
		defer s.inFlight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing at all
		}
		latency.Observe(elapsed.Seconds())
		s.reg.Counter("atis_http_requests_total", "HTTP requests by path, method, and status code.",
			telemetry.L("path", pattern),
			telemetry.L("method", r.Method),
			telemetry.L("code", strconv.Itoa(sw.status)),
		).Inc()

		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		)
	})
}
