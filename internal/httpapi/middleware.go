package httpapi

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ctxKey is the private type for request-scoped context values.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the trace id assigned to the request, or "" outside an
// instrumented handler. The same id is echoed to the client in the
// X-Request-ID response header, so a traveller's complaint and the server's
// structured log line can be joined on it.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// requestIDSeq disambiguates ids if the random source ever fails.
var requestIDSeq atomic.Uint64

// maxRequestIDLen bounds client-supplied trace ids; anything longer is
// replaced rather than copied into every log line and response header.
const maxRequestIDLen = 64

// validRequestID reports whether a client-supplied X-Request-ID is safe to
// propagate: 1–64 chars drawn from [A-Za-z0-9._-].
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// newRequestID returns a 16-hex-char random trace id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestIDSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and body size for the access
// log and the status-code counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// handlers behind instrument() keep deadline and flush control.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush forwards to the underlying writer so streaming handlers keep
// working when wrapped.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards connection takeover (websocket upgrades) when the
// underlying writer supports it.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := w.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, fmt.Errorf("httpapi: underlying ResponseWriter does not support hijacking")
}

// ReadFrom keeps the sendfile fast path available; io.Copy picks up the
// underlying writer's ReaderFrom when it has one.
func (w *statusWriter) ReadFrom(r io.Reader) (int64, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := io.Copy(w.ResponseWriter, r)
	w.bytes += int(n)
	return n, err
}

// instrument wraps one endpoint with the serving-stack middleware:
//
//   - a per-request trace id, honoured from an incoming X-Request-ID header
//     or freshly generated, echoed in the response and stored in the
//     request context for handlers and log lines;
//   - when tracing is enabled, a root span for the request's trace — the
//     W3C traceparent header is ingested (an upstream gateway's trace id
//     names our spans) and echoed with our root span id, and every
//     tracing.Start below the handler attaches to this tree;
//   - atis_http_requests_total{path,method,code}, an
//     atis_http_request_seconds{path} latency histogram (with an
//     OpenMetrics exemplar linking to the trace when it was captured),
//     and the atis_http_in_flight gauge;
//   - one structured access-log line per request.
//
// pattern is the mux registration pattern, used as the path label so metric
// cardinality stays bounded by the route table, not by client input. It is
// also the root span's name — constant per endpoint, so the disabled
// tracing path allocates nothing.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	latency := s.reg.Histogram("atis_http_request_seconds",
		"HTTP request latency.", nil, telemetry.L("path", pattern))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		// The snapshot generation the service holds as the request begins;
		// a gateway fanning out across replicas joins responses on it to
		// know which published world answered.
		w.Header().Set("X-ATIS-Snapshot", strconv.FormatUint(s.svc.Snapshot().Generation(), 10))
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		ctx, trace := s.tracer.StartRequest(ctx, pattern, r.Header.Get("traceparent"))
		if trace != nil {
			w.Header().Set("traceparent", trace.Traceparent())
		}
		r = r.WithContext(ctx)

		s.inFlight.Inc()
		defer s.inFlight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing at all
		}
		root := trace.Root()
		root.SetStr("requestId", id)
		root.SetStr("method", r.Method)
		root.SetInt("status", int64(sw.status))
		root.SetInt("bytes", int64(sw.bytes))
		if s.tracer.Finish(trace) {
			// Captured (sampled or slow): link the histogram bucket to the
			// retrievable trace.
			latency.ObserveExemplar(elapsed.Seconds(), trace.ID(),
				float64(time.Now().UnixNano())/1e9)
		} else {
			latency.Observe(elapsed.Seconds())
		}
		s.reg.Counter("atis_http_requests_total", "HTTP requests by path, method, and status code.",
			telemetry.L("path", pattern),
			telemetry.L("method", r.Method),
			telemetry.L("code", strconv.Itoa(sw.status)),
		).Inc()

		logAttrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		}
		if trace != nil {
			logAttrs = append(logAttrs, slog.String("trace_id", trace.ID()))
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", logAttrs...)
	})
}
