// Package httpapi exposes the route package's three ATIS facilities over
// HTTP with JSON responses. cmd/atis-server is a thin wrapper around
// Handler; the package exists so the API surface is testable with
// net/http/httptest.
//
// The versioned surface (method-scoped, Go 1.22 patterns):
//
//	GET  /v1/route?from=A&to=B&algo=…&weight=…&budget_ms=…  route computation
//	POST /v1/routes/batch {"pairs":[{"from":"A","to":"B"},…]} batched computation
//	POST /v1/evaluate  {"nodes":[1,2,3]}                    route evaluation
//	GET  /v1/display?from=A&to=B                            route display (text map)
//	POST /v1/traffic   {"x":16,"y":16,"radius":4,"factor":2} regional congestion
//	POST /v1/traffic/batch {"changes":[{"from":"A","to":"B","cost":3.5},…]} batched edge updates
//	POST /v1/traffic/reset                                  restore free flow
//	GET  /v1/reachable?from=A&budget=5                      isochrone
//	GET  /v1/directions?from=A&to=B                         turn-by-turn guidance
//	GET  /v1/alternates?from=A&to=B&k=3                     k loopless routes
//	GET  /v1/map                                            map metadata
//	GET  /v1/stats                                          serving counters
//	GET  /v1/snapshot                                       published snapshot identity
//	GET  /v1/metrics                                        Prometheus/OpenMetrics exposition
//	GET  /v1/debug/traces                                   captured trace summaries
//	GET  /v1/debug/traces/{id}                              one trace's span tree
//
// The unversioned paths remain as aliases; they serve identically but
// carry a Deprecation header, a Link to the /v1 successor, a Sunset
// header with the scheduled removal date, and bump
// atis_http_legacy_path_total (see README for the removal schedule).
//
// Every response carries an X-ATIS-Snapshot header naming the publish
// generation of the snapshot the service held when the request began —
// the hook a fan-out gateway uses to tell which world each replica
// serves.
//
// Every endpoint runs behind the instrumentation middleware (see
// middleware.go). Search-running endpoints additionally run behind the
// request lifecycle (see lifecycle.go): a server-side deadline (default,
// or ?budget_ms= clamped to the configured maximum), the admission
// gate's weighted semaphore with bounded FIFO queue and load shedding,
// and per-algorithm-class expansion budgets. Failures use one structured
// error envelope, {"error":{"code":…,"message":…,"requestId":…}} — see
// errors.go for the code vocabulary.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Server serves one route.Service.
type Server struct {
	svc      *route.Service
	log      *slog.Logger
	reg      *telemetry.Registry
	inFlight *telemetry.Gauge

	admissionCfg admission.Config
	gate         *admission.Gate

	// tracer drives per-request span capture (see internal/tracing). nil
	// means tracing is disabled: the middleware and every instrumentation
	// site below it stay on the zero-alloc nil-span path.
	tracer *tracing.Tracer

	// Request-lifecycle outcome counters; together with the gate's
	// admission counters they make every outcome class visible in
	// /metrics and /stats.
	canceledReqs *telemetry.Counter
	deadlineReqs *telemetry.Counter
	degradedReqs *telemetry.Counter
}

// Option customises a Server.
type Option func(*Server)

// WithLogger routes the server's structured logs to l (default
// slog.Default()).
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.log = l } }

// WithAdmission sizes the admission gate (see admission.Config; the
// zero value yields production defaults).
func WithAdmission(cfg admission.Config) Option {
	return func(s *Server) { s.admissionCfg = cfg }
}

// WithTracing enables per-request span tracing (see internal/tracing):
// every request builds a span tree, requests over cfg.SlowThreshold are
// always captured, a cfg.SampleRate fraction of the rest are kept, and
// captured traces are served by GET /v1/debug/traces. The tracer is also
// attached to the route service so background CH rebuilds produce traces.
func WithTracing(cfg tracing.Config) Option {
	return func(s *Server) { s.tracer = tracing.New(cfg) }
}

// NewServer wraps svc. HTTP metrics are recorded into the service's
// registry, so GET /metrics exposes the whole stack — HTTP layer,
// admission gate, route service, and (when enabled via
// search.EnableTelemetry) the search kernels — from one scrape.
func NewServer(svc *route.Service, opts ...Option) *Server {
	s := &Server{svc: svc, log: slog.Default(), reg: svc.Registry()}
	s.inFlight = s.reg.Gauge("atis_http_in_flight", "HTTP requests currently being served.")
	telemetry.RegisterRuntimeMetrics(s.reg)
	for _, o := range opts {
		o(s)
	}
	if s.tracer != nil {
		svc.SetTracer(s.tracer)
	}
	s.gate = admission.NewGate(s.admissionCfg, s.reg)
	s.canceledReqs = s.reg.Counter("atis_request_lifecycle_total",
		"Search requests by lifecycle outcome.", telemetry.L("outcome", "canceled"))
	s.deadlineReqs = s.reg.Counter("atis_request_lifecycle_total",
		"Search requests by lifecycle outcome.", telemetry.L("outcome", "deadline_exceeded"))
	s.degradedReqs = s.reg.Counter("atis_request_lifecycle_total",
		"Search requests by lifecycle outcome.", telemetry.L("outcome", "degraded"))
	return s
}

// Admission returns the server's admission gate (tests and operators
// inspect or pre-load it).
func (s *Server) Admission() *admission.Gate { return s.gate }

// Tracer returns the server's tracer, nil when tracing is disabled.
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// Handler returns the API's http.Handler: the /v1 surface with
// method-scoped patterns, plus the legacy unversioned aliases, every
// endpoint instrumented. For each path the method-less pattern is also
// registered so wrong-method requests get the enveloped 405 instead of
// the mux's plain-text one.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	endpoints := []struct {
		method string
		path   string
		h      http.HandlerFunc
	}{
		{http.MethodGet, "/route", s.handleRoute},
		{http.MethodPost, "/routes/batch", s.handleBatch},
		{http.MethodGet, "/stats", s.handleStats},
		{http.MethodPost, "/evaluate", s.handleEvaluate},
		{http.MethodGet, "/display", s.handleDisplay},
		{http.MethodPost, "/traffic", s.handleTraffic},
		{http.MethodPost, "/traffic/batch", s.handleTrafficBatch},
		{http.MethodPost, "/traffic/reset", s.handleTrafficReset},
		{http.MethodGet, "/reachable", s.handleReachable},
		{http.MethodGet, "/directions", s.handleDirections},
		{http.MethodGet, "/alternates", s.handleAlternates},
		{http.MethodGet, "/map", s.handleMap},
		{http.MethodGet, "/metrics", s.reg.Handler().ServeHTTP},
	}
	for _, ep := range endpoints {
		v1 := "/v1" + ep.path
		mux.Handle(ep.method+" "+v1, s.instrument(v1, ep.h))
		mux.Handle(v1, s.instrument(v1, s.methodNotAllowed(ep.method)))
		s.registerLegacy(mux, ep.method, ep.path, ep.h)
	}
	// The snapshot and trace debug endpoints are new with /v1 — no legacy
	// alias to carry, so they register outside the alias loop.
	for _, ep := range []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{http.MethodGet, "/v1/snapshot", s.handleSnapshot},
		{http.MethodGet, "/v1/debug/traces", s.handleDebugTraces},
		{http.MethodGet, "/v1/debug/traces/{id}", s.handleDebugTrace},
	} {
		mux.Handle(ep.method+" "+ep.path, s.instrument(ep.path, ep.h))
		mux.Handle(ep.path, s.instrument(ep.path, s.methodNotAllowed(ep.method)))
	}
	return mux
}

// registerLegacy mounts the unversioned alias of one endpoint behind the
// deprecation wrapper — the single funnel every legacy path goes
// through, so the Deprecation/Link/Sunset headers, the
// atis_http_legacy_path_total counter, and the removal schedule cannot
// drift per endpoint.
func (s *Server) registerLegacy(mux *http.ServeMux, method, path string, h http.HandlerFunc) {
	mux.Handle(method+" "+path, s.instrument(path, s.deprecate(path, h)))
	mux.Handle(path, s.instrument(path, s.deprecate(path, s.methodNotAllowed(method))))
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("encoding response", "request_id", RequestID(r.Context()), "err", err)
	}
}

// resolve maps a landmark name or numeric id onto a node.
func (s *Server) resolve(spec string) (graph.NodeID, error) {
	g := s.svc.Graph()
	if id, ok := g.Lookup(spec); ok {
		return id, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 0 || n >= g.NumNodes() {
		return 0, withCode(CodeBadNode, fmt.Errorf("unknown node %q", spec))
	}
	return graph.NodeID(n), nil
}

// RouteResponse is the route body embedded verbatim in /v1/route,
// /v1/routes/batch items, and their legacy aliases. Cost is -1 when no
// route exists (JSON has no +Inf). Degraded marks answers served from
// the cache or CH index by the load-shedding degradation path rather
// than a fresh search.
type RouteResponse struct {
	Found      bool        `json:"found"`
	Cost       float64     `json:"cost"`
	Nodes      []int32     `json:"nodes,omitempty"`
	Algorithm  string      `json:"algorithm"`
	Iterations int         `json:"iterations"`
	Degraded   bool        `json:"degraded,omitempty"`
	Evaluation *Evaluation `json:"evaluation,omitempty"`
}

// routeToBody converts a computed route to its wire shape; Algorithm and
// Iterations are always populated, found or not.
func routeToBody(rt core.Route) RouteResponse {
	resp := RouteResponse{
		Found:      rt.Found,
		Cost:       rt.Cost,
		Algorithm:  rt.Algorithm.String(),
		Iterations: rt.Trace.Iterations,
	}
	if rt.Found {
		for _, u := range rt.Path.Nodes {
			resp.Nodes = append(resp.Nodes, int32(u))
		}
	} else {
		resp.Cost = -1
	}
	return resp
}

// Evaluation is the JSON form of route.Evaluation.
type Evaluation struct {
	Hops            int     `json:"hops"`
	Distance        float64 `json:"distance"`
	BaseCost        float64 `json:"baseCost"`
	CurrentCost     float64 `json:"currentCost"`
	CongestionRatio float64 `json:"congestionRatio"`
	CongestedHops   int     `json:"congestedHops"`
}

func evalToBody(ev route.Evaluation) *Evaluation {
	return &Evaluation{
		Hops:            ev.Hops,
		Distance:        ev.Distance,
		BaseCost:        ev.BaseCost,
		CurrentCost:     ev.CurrentCost,
		CongestionRatio: ev.CongestionRatio,
		CongestedHops:   ev.CongestedHops,
	}
}

func (s *Server) computeOptions(r *http.Request) (core.Options, error) {
	opts := core.Options{}
	if a := r.URL.Query().Get("algo"); a != "" {
		algo, err := core.ParseAlgorithm(a)
		if err != nil {
			return opts, withCode(CodeBadAlgo, err)
		}
		opts.Algorithm = algo
	}
	if ws := r.URL.Query().Get("weight"); ws != "" {
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 {
			return opts, withCode(CodeBadRequest, fmt.Errorf("bad weight %q", ws))
		}
		opts.Weight = w
	}
	return opts, nil
}

// parseRouteQuery resolves the endpoints and options of a single-pair
// query, writing the error response itself on failure.
func (s *Server) parseRouteQuery(w http.ResponseWriter, r *http.Request) (from, to graph.NodeID, opts core.Options, ok bool) {
	from, err := s.resolve(r.URL.Query().Get("from"))
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return 0, 0, opts, false
	}
	to, err = s.resolve(r.URL.Query().Get("to"))
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return 0, 0, opts, false
	}
	opts, err = s.computeOptions(r)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return 0, 0, opts, false
	}
	return from, to, opts, true
}

// computeFromQuery is the full single-pair pipeline — parse, admit,
// search — shared by /display and /directions. It writes the error
// response itself; callers render the route on ok.
func (s *Server) computeFromQuery(w http.ResponseWriter, r *http.Request) (core.Route, bool) {
	from, to, opts, ok := s.parseRouteQuery(w, r)
	if !ok {
		return core.Route{}, false
	}
	ctx, done, err := s.admit(w, r, opts.Algorithm, false)
	if err != nil {
		return core.Route{}, false
	}
	defer done()
	rt, err := s.svc.ComputeCtx(ctx, from, to, opts)
	if err != nil {
		s.searchError(w, r, err)
		return core.Route{}, false
	}
	return rt, true
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	from, to, opts, ok := s.parseRouteQuery(w, r)
	if !ok {
		return
	}
	ctx, done, err := s.admit(w, r, opts.Algorithm, true)
	if err != nil {
		if errors.Is(err, admission.ErrShed) && s.gate.Config().Degrade {
			// Degradation mode: a shed route request may still be
			// answerable without search work — from the cache or the CH
			// index — which beats a 503 for the traveller.
			if rt, served := s.svc.ComputeDegraded(from, to, opts); served {
				s.degradedReqs.Inc()
				resp := routeToBody(rt)
				resp.Degraded = true
				s.writeJSON(w, r, resp)
				return
			}
			s.shedResponse(w, r, err)
		}
		return
	}
	defer done()
	rt, err := s.svc.ComputeCtx(ctx, from, to, opts)
	if err != nil {
		s.searchError(w, r, err)
		return
	}
	resp := routeToBody(rt)
	if rt.Found {
		if ev, err := s.svc.Evaluate(rt.Path); err == nil {
			resp.Evaluation = evalToBody(ev)
		}
	}
	s.writeJSON(w, r, resp)
}

// maxBatchPairs bounds one /routes/batch request; larger fleets should
// split their requests.
const maxBatchPairs = 1024

// handleBatch fans a slice of origin–destination pairs across the route
// service's worker pool: POST /v1/routes/batch
// {"pairs":[{"from":"A","to":"B"},…],"algo":"dijkstra","weight":1}.
// The response carries one entry per pair, positionally aligned, each
// embedding the exact RouteResponse shape of /v1/route; a bad endpoint
// yields a per-entry error instead of failing the batch. The whole batch
// is admitted as one request under the algorithm's class; a mid-batch
// deadline or cancel leaves per-entry errors on the unprocessed pairs.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Pairs []struct {
			From string `json:"from"`
			To   string `json:"to"`
		} `json:"pairs"`
		Algo   string  `json:"algo"`
		Weight float64 `json:"weight"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if len(body.Pairs) == 0 {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(body.Pairs) > maxBatchPairs {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("batch of %d pairs exceeds limit %d", len(body.Pairs), maxBatchPairs))
		return
	}
	opts := core.Options{Weight: body.Weight}
	if body.Algo != "" {
		algo, err := core.ParseAlgorithm(body.Algo)
		if err != nil {
			s.apiError(w, r, http.StatusBadRequest, CodeBadAlgo, err)
			return
		}
		opts.Algorithm = algo
	}
	// Record the batch size on the root span before admission, so a shed
	// batch's trace still shows how much work was turned away (the
	// admission child span carries the outcome).
	sp := tracing.FromContext(r.Context())
	sp.SetInt("batch.pairs", int64(len(body.Pairs)))
	ctx, done, err := s.admit(w, r, opts.Algorithm, false)
	if err != nil {
		return
	}
	defer done()

	type item struct {
		RouteResponse
		// RequestID is the whole batch's request-scoped id: the batch is
		// admitted and traced as one request, so every item joins to the
		// same access-log line and (when captured) the same trace.
		RequestID string `json:"requestId"`
		Error     string `json:"error,omitempty"`
	}
	reqID := RequestID(r.Context())
	items := make([]item, len(body.Pairs))
	pairs := make([]route.Pair, 0, len(body.Pairs))
	idx := make([]int, 0, len(body.Pairs)) // items slot per resolvable pair
	for i, p := range body.Pairs {
		from, err := s.resolve(p.From)
		if err != nil {
			items[i] = item{RouteResponse: RouteResponse{Cost: -1, Algorithm: opts.Algorithm.String()}, RequestID: reqID, Error: err.Error()}
			continue
		}
		to, err := s.resolve(p.To)
		if err != nil {
			items[i] = item{RouteResponse: RouteResponse{Cost: -1, Algorithm: opts.Algorithm.String()}, RequestID: reqID, Error: err.Error()}
			continue
		}
		pairs = append(pairs, route.Pair{From: from, To: to})
		idx = append(idx, i)
	}

	failed := len(body.Pairs) - len(pairs)
	for j, res := range s.svc.ComputeBatchCtx(ctx, pairs, opts) {
		i := idx[j]
		if res.Err != nil {
			items[i] = item{RouteResponse: RouteResponse{Cost: -1, Algorithm: opts.Algorithm.String()}, RequestID: reqID, Error: res.Err.Error()}
			failed++
			continue
		}
		items[i] = item{RouteResponse: routeToBody(res.Route), RequestID: reqID}
	}
	sp.SetInt("batch.errors", int64(failed))
	s.writeJSON(w, r, map[string]any{"count": len(items), "routes": items})
}

// handleStats reports the serving stack's counters:
// GET /v1/stats → {"cacheHits":…,"cacheMisses":…,"cacheEntries":…,
// "costGeneration":…,"snapshot":{…},"ch":{…},"admission":{…},
// "lifecycle":{…}}. Every field reads lock-free state — counters,
// the published snapshot — so a scrape can never block behind a
// traffic writer mid-customization.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.svc.CacheStats()
	sn := s.svc.Snapshot()
	s.writeJSON(w, r, map[string]any{
		"cacheHits":      hits,
		"cacheMisses":    misses,
		"cacheEntries":   entries,
		"costGeneration": sn.CostGeneration(),
		"snapshot":       snapshotBody(sn),
		"ch":             s.svc.CHStats(),
		"admission":      s.gate.Stats(),
		"lifecycle": map[string]uint64{
			"canceled":         s.canceledReqs.Value(),
			"deadlineExceeded": s.deadlineReqs.Value(),
			"degraded":         s.degradedReqs.Value(),
		},
	})
}

// snapshotBody is the wire shape of a snapshot's identity, shared by
// /v1/stats and /v1/snapshot so a gateway reads the same fields either
// way.
func snapshotBody(sn *route.Snapshot) map[string]any {
	return map[string]any{
		"version":     sn.CostVersion(),
		"generation":  sn.Generation(),
		"publishedAt": sn.PublishedAt().UTC().Format(time.RFC3339Nano),
	}
}

// handleSnapshot exposes the published snapshot's identity:
// GET /v1/snapshot → {"version":…,"generation":…,"publishedAt":…,
// "costGeneration":…,"ch":{"ready":…,"shortcuts":…}}. The generation
// here is the same number every response carries in X-ATIS-Snapshot, so
// a gateway doing snapshot-version-aware fan-out can poll this endpoint
// to learn which world a replica serves and route consistency-sensitive
// request pairs to replicas publishing the same generation.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sn := s.svc.Snapshot()
	body := snapshotBody(sn)
	body["costGeneration"] = sn.CostGeneration()
	chState := map[string]any{"ready": sn.CH() != nil}
	if ix := sn.CH(); ix != nil {
		chState["shortcuts"] = ix.Shortcuts()
	}
	body["ch"] = chState
	s.writeJSON(w, r, body)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Nodes []int32 `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	p := graph.Path{}
	for _, n := range body.Nodes {
		p.Nodes = append(p.Nodes, graph.NodeID(n))
	}
	ev, err := s.svc.Evaluate(p)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	s.writeJSON(w, r, evalToBody(ev))
}

func (s *Server) handleDisplay(w http.ResponseWriter, r *http.Request) {
	rt, ok := s.computeFromQuery(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.svc.Display(rt.Path, 80, 40))
}

func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	var body struct {
		X, Y, Radius, Factor float64
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	n, err := s.svc.ApplyRegionCongestionCtx(r.Context(), graph.Point{X: body.X, Y: body.Y}, body.Radius, body.Factor)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	s.writeJSON(w, r, map[string]int{"affectedEdges": n})
}

// maxTrafficChanges bounds one /traffic/batch request; a feed pushing more
// per tick should split it — each request is one CostVersion bump and one
// customization pass either way.
const maxTrafficChanges = 4096

// handleTrafficBatch applies a traffic feed's edge updates as one batch:
// POST /v1/traffic/batch
// {"changes":[{"from":"A","to":"B","cost":3.5},{"from":"7","to":"8","factor":2}]}.
// Each change names a directed edge by landmark name or node id and sets
// either an absolute cost or a multiplicative factor (exactly one). The
// whole batch is validated first and applied atomically — one cost-version
// bump, one route-cache invalidation, one CH metric customization — so a
// half-applied feed tick is never observable.
func (s *Server) handleTrafficBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Changes []struct {
			From   string   `json:"from"`
			To     string   `json:"to"`
			Cost   *float64 `json:"cost,omitempty"`
			Factor *float64 `json:"factor,omitempty"`
		} `json:"changes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if len(body.Changes) == 0 {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(body.Changes) > maxTrafficChanges {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("batch of %d changes exceeds limit %d", len(body.Changes), maxTrafficChanges))
		return
	}
	changes := make([]graph.EdgeCostChange, 0, len(body.Changes))
	for i, c := range body.Changes {
		from, err := s.resolve(c.From)
		if err != nil {
			s.apiError(w, r, http.StatusBadRequest, "", fmt.Errorf("change %d: %w", i, err))
			return
		}
		to, err := s.resolve(c.To)
		if err != nil {
			s.apiError(w, r, http.StatusBadRequest, "", fmt.Errorf("change %d: %w", i, err))
			return
		}
		if (c.Cost == nil) == (c.Factor == nil) {
			s.apiError(w, r, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("change %d: exactly one of cost or factor required", i))
			return
		}
		ch := graph.EdgeCostChange{Tail: from, Head: to}
		if c.Cost != nil {
			ch.Cost = *c.Cost
		} else {
			ch.Cost = *c.Factor
			ch.Scale = true
		}
		changes = append(changes, ch)
	}
	n, err := s.svc.ApplyTrafficBatchCtx(r.Context(), changes)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	s.writeJSON(w, r, map[string]int{"affectedEdges": n, "changes": len(changes)})
}

func (s *Server) handleTrafficReset(w http.ResponseWriter, r *http.Request) {
	s.svc.ResetTrafficCtx(r.Context())
	s.writeJSON(w, r, map[string]string{"status": "free flow restored"})
}

// handleDirections returns turn-by-turn guidance for the computed route:
// GET /v1/directions?from=A&to=B[&algo=…].
func (s *Server) handleDirections(w http.ResponseWriter, r *http.Request) {
	rt, ok := s.computeFromQuery(w, r)
	if !ok {
		return
	}
	if !rt.Found {
		s.apiError(w, r, http.StatusNotFound, CodeNoRoute, fmt.Errorf("no route"))
		return
	}
	ins, err := s.svc.Directions(rt.Path)
	if err != nil {
		s.apiError(w, r, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	type step struct {
		Action   string  `json:"action"`
		Heading  string  `json:"heading,omitempty"`
		Distance float64 `json:"distance"`
		Segments int     `json:"segments"`
		At       int32   `json:"at"`
	}
	steps := make([]step, 0, len(ins))
	for _, in := range ins {
		steps = append(steps, step{
			Action: in.Action, Heading: in.Heading,
			Distance: in.Distance, Segments: in.Segments, At: int32(in.At),
		})
	}
	s.writeJSON(w, r, map[string]any{"cost": rt.Cost, "steps": steps})
}

// handleAlternates lists up to k loopless routes:
// GET /v1/alternates?from=A&to=B&k=3.
func (s *Server) handleAlternates(w http.ResponseWriter, r *http.Request) {
	from, err := s.resolve(r.URL.Query().Get("from"))
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return
	}
	to, err := s.resolve(r.URL.Query().Get("to"))
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return
	}
	k := 3
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 || k > 16 {
			s.apiError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad k %q (want 1..16)", ks))
			return
		}
	}
	// Yen's algorithm runs a family of Dijkstras; admit under the
	// best-first class.
	ctx, done, err := s.admit(w, r, core.Dijkstra, false)
	if err != nil {
		return
	}
	defer done()
	routes, err := s.svc.AlternatesCtx(ctx, from, to, k)
	if err != nil {
		s.searchError(w, r, err)
		return
	}
	type alt struct {
		Cost  float64 `json:"cost"`
		Nodes []int32 `json:"nodes"`
	}
	alts := make([]alt, 0, len(routes))
	for _, rt := range routes {
		a := alt{Cost: rt.Cost}
		for _, u := range rt.Path.Nodes {
			a.Nodes = append(a.Nodes, int32(u))
		}
		alts = append(alts, a)
	}
	s.writeJSON(w, r, map[string]any{"count": len(alts), "routes": alts})
}

// handleReachable answers the isochrone query:
// GET /v1/reachable?from=A&budget=5 → {"count":N,"nodes":{"17":3.2,…}}.
func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	from, err := s.resolve(r.URL.Query().Get("from"))
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return
	}
	budget, err := strconv.ParseFloat(r.URL.Query().Get("budget"), 64)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("bad budget %q", r.URL.Query().Get("budget")))
		return
	}
	ctx, done, err := s.admit(w, r, core.Dijkstra, false)
	if err != nil {
		return
	}
	defer done()
	reach, err := s.svc.ReachableCtx(ctx, from, budget)
	if err != nil {
		s.searchError(w, r, err)
		return
	}
	nodes := make(map[string]float64, len(reach))
	for u, c := range reach {
		nodes[strconv.Itoa(int(u))] = c
	}
	s.writeJSON(w, r, map[string]any{"count": len(reach), "nodes": nodes})
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	g := s.svc.Graph()
	landmarks := map[string]int32{}
	for name, id := range g.NamedNodes() {
		landmarks[name] = int32(id)
	}
	s.writeJSON(w, r, map[string]any{
		"nodes":     g.NumNodes(),
		"edges":     g.NumEdges(),
		"landmarks": landmarks,
	})
}
