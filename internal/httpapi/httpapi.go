// Package httpapi exposes the route package's three ATIS facilities over
// HTTP with JSON responses. cmd/atis-server is a thin wrapper around
// Handler; the package exists so the API surface is testable with
// net/http/httptest.
//
//	GET  /route?from=A&to=B&algo=astar-euclidean&weight=1   route computation
//	POST /routes/batch {"pairs":[{"from":"A","to":"B"},…]}  batched computation
//	POST /evaluate  {"nodes":[1,2,3]}                       route evaluation
//	GET  /display?from=A&to=B                               route display (text map)
//	POST /traffic   {"x":16,"y":16,"radius":4,"factor":2}   regional congestion
//	POST /traffic/reset                                     restore free flow
//	GET  /map                                               map metadata
//	GET  /stats                                             cache/generation counters
//	GET  /metrics                                           Prometheus text format
//
// Every endpoint runs behind the instrumentation middleware (see
// middleware.go): per-request trace ids surfaced in X-Request-ID,
// latency/status/in-flight metrics, and structured access logs.
package httpapi

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// Server serves one route.Service.
type Server struct {
	svc      *route.Service
	log      *slog.Logger
	reg      *telemetry.Registry
	inFlight *telemetry.Gauge
}

// Option customises a Server.
type Option func(*Server)

// WithLogger routes the server's structured logs to l (default
// slog.Default()).
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.log = l } }

// NewServer wraps svc. HTTP metrics are recorded into the service's
// registry, so GET /metrics exposes the whole stack — HTTP layer, route
// service, and (when enabled via search.EnableTelemetry) the search
// kernels — from one scrape.
func NewServer(svc *route.Service, opts ...Option) *Server {
	s := &Server{svc: svc, log: slog.Default(), reg: svc.Registry()}
	s.inFlight = s.reg.Gauge("atis_http_in_flight", "HTTP requests currently being served.")
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the API's http.Handler with every endpoint instrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	endpoints := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"/route", s.handleRoute},
		{"/routes/batch", s.handleBatch},
		{"/stats", s.handleStats},
		{"/evaluate", s.handleEvaluate},
		{"/display", s.handleDisplay},
		{"/traffic", s.handleTraffic},
		{"/traffic/reset", s.handleTrafficReset},
		{"/reachable", s.handleReachable},
		{"/directions", s.handleDirections},
		{"/alternates", s.handleAlternates},
		{"/map", s.handleMap},
		{"/metrics", s.reg.Handler().ServeHTTP},
	}
	for _, ep := range endpoints {
		mux.Handle(ep.pattern, s.instrument(ep.pattern, ep.h))
	}
	return mux
}

func (s *Server) httpError(w http.ResponseWriter, r *http.Request, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		s.log.Warn("encoding error response", "request_id", RequestID(r.Context()), "err", encErr)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("encoding response", "request_id", RequestID(r.Context()), "err", err)
	}
}

// resolve maps a landmark name or numeric id onto a node.
func (s *Server) resolve(spec string) (graph.NodeID, error) {
	g := s.svc.Graph()
	if id, ok := g.Lookup(spec); ok {
		return id, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 0 || n >= g.NumNodes() {
		return 0, fmt.Errorf("unknown node %q", spec)
	}
	return graph.NodeID(n), nil
}

// RouteResponse is /route's JSON body. Cost is -1 when no route exists
// (JSON has no +Inf).
type RouteResponse struct {
	Found      bool        `json:"found"`
	Cost       float64     `json:"cost"`
	Nodes      []int32     `json:"nodes,omitempty"`
	Algorithm  string      `json:"algorithm"`
	Iterations int         `json:"iterations"`
	Evaluation *Evaluation `json:"evaluation,omitempty"`
}

// Evaluation is the JSON form of route.Evaluation.
type Evaluation struct {
	Hops            int     `json:"hops"`
	Distance        float64 `json:"distance"`
	BaseCost        float64 `json:"baseCost"`
	CurrentCost     float64 `json:"currentCost"`
	CongestionRatio float64 `json:"congestionRatio"`
	CongestedHops   int     `json:"congestedHops"`
}

func evalToBody(ev route.Evaluation) *Evaluation {
	return &Evaluation{
		Hops:            ev.Hops,
		Distance:        ev.Distance,
		BaseCost:        ev.BaseCost,
		CurrentCost:     ev.CurrentCost,
		CongestionRatio: ev.CongestionRatio,
		CongestedHops:   ev.CongestedHops,
	}
}

func (s *Server) computeOptions(r *http.Request) (core.Options, error) {
	opts := core.Options{}
	if a := r.URL.Query().Get("algo"); a != "" {
		algo, err := core.ParseAlgorithm(a)
		if err != nil {
			return opts, err
		}
		opts.Algorithm = algo
	}
	if ws := r.URL.Query().Get("weight"); ws != "" {
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 {
			return opts, fmt.Errorf("bad weight %q", ws)
		}
		opts.Weight = w
	}
	return opts, nil
}

func (s *Server) routeFromQuery(r *http.Request) (core.Route, error) {
	from, err := s.resolve(r.URL.Query().Get("from"))
	if err != nil {
		return core.Route{}, err
	}
	to, err := s.resolve(r.URL.Query().Get("to"))
	if err != nil {
		return core.Route{}, err
	}
	opts, err := s.computeOptions(r)
	if err != nil {
		return core.Route{}, err
	}
	return s.svc.Compute(from, to, opts)
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	rt, err := s.routeFromQuery(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := RouteResponse{
		Found:      rt.Found,
		Cost:       rt.Cost,
		Algorithm:  rt.Algorithm.String(),
		Iterations: rt.Trace.Iterations,
	}
	if rt.Found {
		for _, u := range rt.Path.Nodes {
			resp.Nodes = append(resp.Nodes, int32(u))
		}
		if ev, err := s.svc.Evaluate(rt.Path); err == nil {
			resp.Evaluation = evalToBody(ev)
		}
	} else {
		resp.Cost = -1
	}
	s.writeJSON(w, r, resp)
}

// maxBatchPairs bounds one /routes/batch request; larger fleets should
// split their requests.
const maxBatchPairs = 1024

// handleBatch fans a slice of origin–destination pairs across the route
// service's worker pool: POST /routes/batch
// {"pairs":[{"from":"A","to":"B"},…],"algo":"dijkstra","weight":1}.
// The response carries one entry per pair, positionally aligned; a bad
// endpoint yields a per-entry error instead of failing the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var body struct {
		Pairs []struct {
			From string `json:"from"`
			To   string `json:"to"`
		} `json:"pairs"`
		Algo   string  `json:"algo"`
		Weight float64 `json:"weight"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if len(body.Pairs) == 0 {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(body.Pairs) > maxBatchPairs {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("batch of %d pairs exceeds limit %d", len(body.Pairs), maxBatchPairs))
		return
	}
	opts := core.Options{Weight: body.Weight}
	if body.Algo != "" {
		algo, err := core.ParseAlgorithm(body.Algo)
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
		opts.Algorithm = algo
	}

	type item struct {
		RouteResponse
		Error string `json:"error,omitempty"`
	}
	items := make([]item, len(body.Pairs))
	pairs := make([]route.Pair, 0, len(body.Pairs))
	idx := make([]int, 0, len(body.Pairs)) // items slot per resolvable pair
	for i, p := range body.Pairs {
		from, err := s.resolve(p.From)
		if err != nil {
			items[i] = item{RouteResponse: RouteResponse{Cost: -1}, Error: err.Error()}
			continue
		}
		to, err := s.resolve(p.To)
		if err != nil {
			items[i] = item{RouteResponse: RouteResponse{Cost: -1}, Error: err.Error()}
			continue
		}
		pairs = append(pairs, route.Pair{From: from, To: to})
		idx = append(idx, i)
	}

	for j, res := range s.svc.ComputeBatch(pairs, opts) {
		i := idx[j]
		if res.Err != nil {
			items[i] = item{RouteResponse: RouteResponse{Cost: -1}, Error: res.Err.Error()}
			continue
		}
		rt := res.Route
		resp := RouteResponse{
			Found:      rt.Found,
			Cost:       rt.Cost,
			Algorithm:  rt.Algorithm.String(),
			Iterations: rt.Trace.Iterations,
		}
		if rt.Found {
			for _, u := range rt.Path.Nodes {
				resp.Nodes = append(resp.Nodes, int32(u))
			}
		} else {
			resp.Cost = -1
		}
		items[i] = item{RouteResponse: resp}
	}
	s.writeJSON(w, r, map[string]any{"count": len(items), "routes": items})
}

// handleStats reports the concurrent engine's counters:
// GET /stats → {"cacheHits":…,"cacheMisses":…,"cacheEntries":…,
// "costGeneration":…,"ch":{"ready":…,"fresh":…,…}}.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.svc.CacheStats()
	s.writeJSON(w, r, map[string]any{
		"cacheHits":      hits,
		"cacheMisses":    misses,
		"cacheEntries":   entries,
		"costGeneration": s.svc.CostGeneration(),
		"ch":             s.svc.CHStats(),
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var body struct {
		Nodes []int32 `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	p := graph.Path{}
	for _, n := range body.Nodes {
		p.Nodes = append(p.Nodes, graph.NodeID(n))
	}
	ev, err := s.svc.Evaluate(p)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, r, evalToBody(ev))
}

func (s *Server) handleDisplay(w http.ResponseWriter, r *http.Request) {
	rt, err := s.routeFromQuery(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.svc.Display(rt.Path, 80, 40))
}

func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var body struct {
		X, Y, Radius, Factor float64
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	n, err := s.svc.ApplyRegionCongestion(graph.Point{X: body.X, Y: body.Y}, body.Radius, body.Factor)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, r, map[string]int{"affectedEdges": n})
}

func (s *Server) handleTrafficReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	s.svc.ResetTraffic()
	s.writeJSON(w, r, map[string]string{"status": "free flow restored"})
}

// handleDirections returns turn-by-turn guidance for the computed route:
// GET /directions?from=A&to=B[&algo=…].
func (s *Server) handleDirections(w http.ResponseWriter, r *http.Request) {
	rt, err := s.routeFromQuery(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if !rt.Found {
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("no route"))
		return
	}
	ins, err := s.svc.Directions(rt.Path)
	if err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	type step struct {
		Action   string  `json:"action"`
		Heading  string  `json:"heading,omitempty"`
		Distance float64 `json:"distance"`
		Segments int     `json:"segments"`
		At       int32   `json:"at"`
	}
	steps := make([]step, 0, len(ins))
	for _, in := range ins {
		steps = append(steps, step{
			Action: in.Action, Heading: in.Heading,
			Distance: in.Distance, Segments: in.Segments, At: int32(in.At),
		})
	}
	s.writeJSON(w, r, map[string]any{"cost": rt.Cost, "steps": steps})
}

// handleAlternates lists up to k loopless routes:
// GET /alternates?from=A&to=B&k=3.
func (s *Server) handleAlternates(w http.ResponseWriter, r *http.Request) {
	from, err := s.resolve(r.URL.Query().Get("from"))
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	to, err := s.resolve(r.URL.Query().Get("to"))
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	k := 3
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 || k > 16 {
			s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad k %q (want 1..16)", ks))
			return
		}
	}
	routes, err := s.svc.Alternates(from, to, k)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	type alt struct {
		Cost  float64 `json:"cost"`
		Nodes []int32 `json:"nodes"`
	}
	alts := make([]alt, 0, len(routes))
	for _, rt := range routes {
		a := alt{Cost: rt.Cost}
		for _, u := range rt.Path.Nodes {
			a.Nodes = append(a.Nodes, int32(u))
		}
		alts = append(alts, a)
	}
	s.writeJSON(w, r, map[string]any{"count": len(alts), "routes": alts})
}

// handleReachable answers the isochrone query:
// GET /reachable?from=A&budget=5 → {"count":N,"nodes":{"17":3.2,…}}.
func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	from, err := s.resolve(r.URL.Query().Get("from"))
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	budget, err := strconv.ParseFloat(r.URL.Query().Get("budget"), 64)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad budget %q", r.URL.Query().Get("budget")))
		return
	}
	reach, err := s.svc.Reachable(from, budget)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	nodes := make(map[string]float64, len(reach))
	for u, c := range reach {
		nodes[strconv.Itoa(int(u))] = c
	}
	s.writeJSON(w, r, map[string]any{"count": len(reach), "nodes": nodes})
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	g := s.svc.Graph()
	landmarks := map[string]int32{}
	for name, id := range g.NamedNodes() {
		landmarks[name] = int32(id)
	}
	s.writeJSON(w, r, map[string]any{
		"nodes":     g.NumNodes(),
		"edges":     g.NumEdges(),
		"landmarks": landmarks,
	})
}
