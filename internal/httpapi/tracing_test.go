package httpapi

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/mpls"
	"repro/internal/route"
	"repro/internal/tracing"
)

// newTracedServer builds a CH-enabled service behind a server with the
// given tracing config, returning the test server and the Server for
// tracer access.
func newTracedServer(t *testing.T, cfg tracing.Config) (*httptest.Server, *Server) {
	t.Helper()
	svc := route.NewService(mpls.MustGenerate(mpls.Config{}))
	if err := svc.EnableCH(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc,
		WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))),
		WithTracing(cfg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

var traceparentRe = regexp.MustCompile(`^00-([0-9a-f]{32})-([0-9a-f]{16})-(0[01])$`)

// spanNames flattens a snapshot tree into its set of span names.
func spanNames(n tracing.SpanNode, into map[string]tracing.SpanNode) {
	into[n.Name] = n
	for _, c := range n.Children {
		spanNames(c, into)
	}
}

// TestTraceEndToEnd is the acceptance path: with tracing on, one CH
// route request yields a retrievable span tree covering admission,
// cache, kernel, and unpack phases.
func TestTraceEndToEnd(t *testing.T) {
	ts, _ := newTracedServer(t, tracing.Config{SampleRate: 1})

	resp, err := http.Get(ts.URL + "/v1/route?from=A&to=B&algo=ch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/route = %d", resp.StatusCode)
	}
	tp := resp.Header.Get("traceparent")
	m := traceparentRe.FindStringSubmatch(tp)
	if m == nil {
		t.Fatalf("response traceparent %q is not W3C-shaped", tp)
	}
	traceID := m[1]

	var snap tracing.Snapshot
	dresp := getJSON(t, ts.URL+"/v1/debug/traces/"+traceID, &snap)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces/%s = %d", traceID, dresp.StatusCode)
	}
	if snap.TraceID != traceID {
		t.Fatalf("snapshot traceId = %q, want %q", snap.TraceID, traceID)
	}
	if snap.Root.Name != "/v1/route" {
		t.Errorf("root span name = %q, want the route pattern", snap.Root.Name)
	}

	names := map[string]tracing.SpanNode{}
	spanNames(snap.Root, names)
	for _, want := range []string{"admission", "route.cache", "kernel", "ch.search", "ch.unpack"} {
		if _, ok := names[want]; !ok {
			t.Errorf("span tree missing %q phase; have %v", want, keysOf(names))
		}
	}
	if adm, ok := names["admission"]; ok {
		if got := adm.Attrs["outcome"]; got != "admitted" {
			t.Errorf("admission outcome = %v, want admitted", got)
		}
	}
	if k, ok := names["kernel"]; ok {
		if got := k.Attrs["algo"]; got != "ch" {
			t.Errorf("kernel algo = %v, want ch", got)
		}
	}

	// The index lists the capture too.
	var list struct {
		Enabled bool              `json:"enabled"`
		Recent  []tracing.Summary `json:"recent"`
		Slowest []tracing.Summary `json:"slowest"`
	}
	getJSON(t, ts.URL+"/v1/debug/traces", &list)
	if !list.Enabled {
		t.Error("debug index reports tracing disabled")
	}
	found := false
	for _, s := range list.Recent {
		if s.TraceID == traceID {
			found = true
			if s.Spans < 5 {
				t.Errorf("summary spans = %d, want >=5", s.Spans)
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from recent list", traceID)
	}
}

func keysOf(m map[string]tracing.SpanNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceparentIngestEcho asserts an upstream gateway's traceparent is
// honoured: the response carries the same trace id with our fresh root
// span id, and the capture files under the upstream id.
func TestTraceparentIngestEcho(t *testing.T) {
	ts, _ := newTracedServer(t, tracing.Config{SampleRate: 1})
	const upID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const upSpan = "00f067aa0ba902b7"

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/map", nil)
	req.Header.Set("traceparent", "00-"+upID+"-"+upSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	m := traceparentRe.FindStringSubmatch(resp.Header.Get("traceparent"))
	if m == nil {
		t.Fatalf("echoed traceparent %q malformed", resp.Header.Get("traceparent"))
	}
	if m[1] != upID {
		t.Errorf("echoed trace id = %s, want upstream %s", m[1], upID)
	}
	if m[2] == upSpan {
		t.Error("echoed span id is the upstream parent's; want our root span id")
	}

	var snap tracing.Snapshot
	if dresp := getJSON(t, ts.URL+"/v1/debug/traces/"+upID, &snap); dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces/%s = %d", upID, dresp.StatusCode)
	}
	if snap.Upstream != upSpan {
		t.Errorf("snapshot upstream = %q, want %q", snap.Upstream, upSpan)
	}
}

// TestSlowRequestAlwaysCaptured is the tail-sampling guarantee: with a
// zero sample rate, a request over the slow threshold is captured anyway.
func TestSlowRequestAlwaysCaptured(t *testing.T) {
	ts, _ := newTracedServer(t, tracing.Config{SampleRate: 0, SlowThreshold: time.Nanosecond})

	resp, err := http.Get(ts.URL + "/v1/route?from=A&to=B")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	m := traceparentRe.FindStringSubmatch(resp.Header.Get("traceparent"))
	if m == nil {
		t.Fatalf("traceparent %q malformed", resp.Header.Get("traceparent"))
	}

	var snap tracing.Snapshot
	if dresp := getJSON(t, ts.URL+"/v1/debug/traces/"+m[1], &snap); dresp.StatusCode != http.StatusOK {
		t.Fatalf("slow trace not captured: GET /v1/debug/traces/%s = %d", m[1], dresp.StatusCode)
	}
	if !snap.Slow {
		t.Error("captured trace not marked slow")
	}
}

// TestUnsampledTraceNotCaptured is the flip side: enabled tracing with a
// zero sample rate and an unreachable slow threshold records nothing,
// and the detail endpoint 404s with the structured envelope.
func TestUnsampledTraceNotCaptured(t *testing.T) {
	ts, _ := newTracedServer(t, tracing.Config{SampleRate: 0, SlowThreshold: time.Hour})

	resp, err := http.Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	m := traceparentRe.FindStringSubmatch(resp.Header.Get("traceparent"))
	if m == nil {
		t.Fatalf("traceparent %q malformed", resp.Header.Get("traceparent"))
	}

	var envelope map[string]ErrorBody
	dresp := getJSON(t, ts.URL+"/v1/debug/traces/"+m[1], &envelope)
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET on unsampled trace = %d, want 404", dresp.StatusCode)
	}
	if envelope["error"].Code != CodeNotFound {
		t.Errorf("error code = %q, want %q", envelope["error"].Code, CodeNotFound)
	}
}

// TestDebugEndpointsWithTracingDisabled asserts the debug surface stays
// up (and honest) when no tracer is configured.
func TestDebugEndpointsWithTracingDisabled(t *testing.T) {
	ts, _ := newInstrumentedServer(t)

	var list struct {
		Enabled bool `json:"enabled"`
	}
	if resp := getJSON(t, ts.URL+"/v1/debug/traces", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces = %d", resp.StatusCode)
	}
	if list.Enabled {
		t.Error("debug index reports tracing enabled on an untraced server")
	}
	resp, err := http.Get(ts.URL + "/v1/debug/traces/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace detail with tracing off = %d, want 404", resp.StatusCode)
	}
}

// TestExemplarOnCapturedTrace asserts the OpenMetrics exposition links a
// captured trace from the latency histogram.
func TestExemplarOnCapturedTrace(t *testing.T) {
	ts, _ := newTracedServer(t, tracing.Config{SampleRate: 1})

	resp, err := http.Get(ts.URL + "/v1/route?from=A&to=B")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tp := traceparentRe.FindStringSubmatch(resp.Header.Get("traceparent"))
	if tp == nil {
		t.Fatal("no traceparent on traced request")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	out := string(body)
	if !strings.Contains(mresp.Header.Get("Content-Type"), "application/openmetrics-text") {
		t.Fatalf("Content-Type = %q, want OpenMetrics", mresp.Header.Get("Content-Type"))
	}
	if !strings.Contains(out, `# {trace_id="`+tp[1]+`"}`) {
		t.Errorf("OpenMetrics exposition has no exemplar for trace %s", tp[1])
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}
}

// TestBatchItemsCarryRequestID asserts every batch item echoes the
// request-scoped id, resolvable errors included.
func TestBatchItemsCarryRequestID(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	var out struct {
		Routes []struct {
			RequestID string `json:"requestId"`
			Error     string `json:"error"`
		} `json:"routes"`
	}
	resp := postJSON(t, ts.URL+"/v1/routes/batch",
		`{"pairs":[{"from":"A","to":"B"},{"from":"nope","to":"B"}]}`, &out)
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("no X-Request-ID on batch response")
	}
	if len(out.Routes) != 2 {
		t.Fatalf("got %d items, want 2", len(out.Routes))
	}
	for i, it := range out.Routes {
		if it.RequestID != reqID {
			t.Errorf("item %d requestId = %q, want %q", i, it.RequestID, reqID)
		}
	}
	if out.Routes[1].Error == "" {
		t.Error("unresolvable pair lost its per-item error")
	}
}

// TestBatchSpanAttrs asserts a traced batch records its size and error
// count on the root span.
func TestBatchSpanAttrs(t *testing.T) {
	ts, _ := newTracedServer(t, tracing.Config{SampleRate: 1})
	resp := postJSON(t, ts.URL+"/v1/routes/batch",
		`{"pairs":[{"from":"A","to":"B"},{"from":"nope","to":"B"}]}`, nil)
	m := traceparentRe.FindStringSubmatch(resp.Header.Get("traceparent"))
	if m == nil {
		t.Fatal("no traceparent on batch response")
	}
	var snap tracing.Snapshot
	if dresp := getJSON(t, ts.URL+"/v1/debug/traces/"+m[1], &snap); dresp.StatusCode != http.StatusOK {
		t.Fatalf("batch trace not captured: %d", dresp.StatusCode)
	}
	// JSON numbers decode as float64.
	if got := snap.Root.Attrs["batch.pairs"]; got != float64(2) {
		t.Errorf("batch.pairs = %v, want 2", got)
	}
	if got := snap.Root.Attrs["batch.errors"]; got != float64(1) {
		t.Errorf("batch.errors = %v, want 1", got)
	}
}

// TestDisabledTracingZeroSpanAllocs is the middleware half of the
// zero-overhead contract: with no tracer configured, the exact sequence
// of tracing calls the middleware and kernels make per request performs
// zero allocations.
func TestDisabledTracingZeroSpanAllocs(t *testing.T) {
	svc := route.NewService(mpls.MustGenerate(mpls.Config{}))
	srv := NewServer(svc, WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	if srv.tracer != nil {
		t.Fatal("server without WithTracing has a tracer")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		// The middleware's per-request sequence…
		rctx, trace := srv.tracer.StartRequest(ctx, "/v1/route", "")
		// …the kernels' span work below it…
		sctx, sp := tracing.Start(rctx, "kernel")
		_, child := tracing.Start(sctx, "ch.search")
		child.SetInt("settled", 42)
		child.End()
		sp.SetStr("algo", "ch")
		sp.SetBool("found", true)
		sp.End()
		// …and the middleware's finish sequence.
		root := trace.Root()
		root.SetInt("status", 200)
		srv.tracer.Finish(trace)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per request, want 0", allocs)
	}
}
