package httpapi

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// requestContext derives the request's lifecycle context: the client's
// connection context (so a dropped connection cancels the search) capped
// by a server-side deadline — the gate's default budget, or the client's
// ?budget_ms= ask clamped to the configured maximum. The caller must
// call cancel.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	cfg := s.gate.Config()
	budget := cfg.DefaultBudget
	if bs := r.URL.Query().Get("budget_ms"); bs != "" {
		ms, err := strconv.ParseInt(bs, 10, 64)
		if err != nil || ms < 1 {
			return nil, nil, withCode(CodeBadRequest, fmt.Errorf("bad budget_ms %q (want a positive integer)", bs))
		}
		budget = time.Duration(ms) * time.Millisecond
		if budget > cfg.MaxBudget {
			budget = cfg.MaxBudget
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	return ctx, cancel, nil
}

// admit runs the full admission sequence for one search-running request:
// derive the lifecycle context, acquire the gate under the algorithm's
// class weight, and attach the class's expansion budget. On success the
// returned context drives the search and done releases the gate slot and
// the deadline timer. On failure admit writes the error response —
// except a shed when the caller passed degrade=true, where it returns
// errShedDegradable so the caller may try a degraded answer first.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, algo core.Algorithm, degrade bool) (context.Context, func(), error) {
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "", err)
		return nil, nil, err
	}
	cls := admission.ClassFor(algo)
	release, err := s.acquireGate(ctx, cls)
	if err != nil {
		cancel()
		if errors.Is(err, admission.ErrShed) && degrade && s.gate.Config().Degrade {
			return nil, nil, err // caller attempts the degraded path, then shedResponse
		}
		s.admissionError(w, r, err)
		return nil, nil, err
	}
	if cls.MaxExpansions > 0 {
		ctx = search.WithBudget(ctx, cls.MaxExpansions)
	}
	return ctx, func() { release(); cancel() }, nil
}

// acquireGate wraps the gate acquisition in an "admission" span, so a
// traced request shows how long it queued and how it left the gate. The
// span's context is deliberately not returned: admission is a sibling
// phase of the work it admits, not its parent — kernel spans must hang
// off the root, not off the queue wait.
func (s *Server) acquireGate(ctx context.Context, cls admission.Class) (func(), error) {
	_, sp := tracing.Start(ctx, "admission")
	defer sp.End()
	sp.SetInt("weight", int64(cls.Weight))
	release, err := s.gate.Acquire(ctx, cls.Weight)
	if err != nil {
		sp.SetStr("outcome", admissionOutcome(err))
		return nil, err
	}
	sp.SetStr("outcome", "admitted")
	return release, nil
}

// admissionOutcome names a failed acquisition for span attrs — constant
// strings, so recording them costs nothing when tracing is disabled.
func admissionOutcome(err error) string {
	switch {
	case errors.Is(err, admission.ErrShed):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "canceled"
	}
}

// admissionError writes the response for a failed gate acquisition: shed
// → 503 with a Retry-After hint, deadline expired while queued → 504,
// client gone while queued → 499.
func (s *Server) admissionError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, admission.ErrShed):
		s.shedResponse(w, r, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineReqs.Inc()
		s.apiError(w, r, http.StatusGatewayTimeout, CodeDeadlineExceeded, err)
	default:
		s.canceledReqs.Inc()
		s.apiError(w, r, StatusClientClosedRequest, CodeCanceled, err)
	}
}

// shedResponse is the load-shedding 503: Retry-After tells well-behaved
// clients to back off instead of hammering a saturated server.
func (s *Server) shedResponse(w http.ResponseWriter, r *http.Request, err error) {
	w.Header().Set("Retry-After", "1")
	s.apiError(w, r, http.StatusServiceUnavailable, CodeOverloaded, err)
}

// searchError writes the response for a search that started but did not
// finish: client cancel → 499, deadline or expansion budget → 504,
// anything else is a validation failure → 400.
func (s *Server) searchError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, search.ErrCanceled):
		s.canceledReqs.Inc()
		s.apiError(w, r, StatusClientClosedRequest, CodeCanceled, err)
	case errors.Is(err, search.ErrDeadline), errors.Is(err, search.ErrBudget):
		s.deadlineReqs.Inc()
		s.apiError(w, r, http.StatusGatewayTimeout, CodeDeadlineExceeded, err)
	default:
		s.apiError(w, r, http.StatusBadRequest, "", err)
	}
}

// methodNotAllowed is the fallback handler registered on the method-less
// pattern of every endpoint, so wrong-method requests get the structured
// envelope (and an Allow header) instead of the mux's plain-text 405.
func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.apiError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Errorf("%s required", allow))
	}
}

// legacySunset is the scheduled removal date of the unversioned path
// aliases, announced to clients via the Sunset header (RFC 8594) and
// documented in the README's removal schedule.
const legacySunset = "Sun, 01 Nov 2026 00:00:00 GMT"

// deprecate wraps a legacy unversioned endpoint: the handler still
// serves (aliases never break existing clients), but every hit carries a
// Deprecation header, a Link to the successor /v1 path, a Sunset header
// announcing the removal date, and bumps the per-path legacy counter so
// operators can watch migration progress before the sunset lands. Every
// legacy path is mounted through registerLegacy, so this wrapper is the
// single place the deprecation contract lives.
func (s *Server) deprecate(path string, h http.HandlerFunc) http.HandlerFunc {
	counter := s.reg.Counter("atis_http_legacy_path_total",
		"Requests served via deprecated unversioned path aliases.",
		telemetry.L("path", path))
	successor := "/v1" + path
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		w.Header().Set("Sunset", legacySunset)
		counter.Inc()
		h(w, r)
	}
}
