package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/mpls"
	"repro/internal/route"
)

// newCHTestServer is newTestServer with the contraction hierarchy prebuilt,
// so algo=ch is served by the index rather than the cold-start fallback.
func newCHTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := mpls.MustGenerate(mpls.Config{})
	svc := route.NewService(g)
	if err := svc.EnableCH(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRouteEndpointCH(t *testing.T) {
	ts := newCHTestServer(t)
	var chRR, dijRR RouteResponse
	if resp := getJSON(t, ts.URL+"/route?from=G&to=D&algo=ch", &chRR); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if chRR.Algorithm != "ch" {
		t.Fatalf("served by %q, want ch", chRR.Algorithm)
	}
	if !chRR.Found || len(chRR.Nodes) < 2 {
		t.Fatalf("ch route response: %+v", chRR)
	}
	getJSON(t, ts.URL+"/route?from=G&to=D&algo=dijkstra", &dijRR)
	if diff := chRR.Cost - dijRR.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ch cost %v disagrees with dijkstra %v", chRR.Cost, dijRR.Cost)
	}
}

func TestStatsReportsCH(t *testing.T) {
	ts := newCHTestServer(t)
	var rr RouteResponse
	getJSON(t, ts.URL+"/route?from=G&to=D&algo=ch", &rr)
	var stats struct {
		CH route.CHStats `json:"ch"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if !stats.CH.Ready || !stats.CH.Fresh {
		t.Fatalf("stats ch block: %+v", stats.CH)
	}
	if stats.CH.Queries == 0 {
		t.Fatalf("index query not counted: %+v", stats.CH)
	}

	// A traffic mutation must flip the index to stale; CH requests keep
	// succeeding (fallback) while the background rebuild runs.
	var applied map[string]int
	if resp := postJSON(t, ts.URL+"/traffic", `{"x":16,"y":16,"radius":5,"factor":4}`, &applied); resp.StatusCode != http.StatusOK || applied["affectedEdges"] == 0 {
		t.Fatalf("traffic: %d %v", resp.StatusCode, applied)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.CH.Fresh {
		// The rebuild may already have finished on a fast machine; only a
		// fresh index with zero rebuild growth would indicate a gate bypass.
		if stats.CH.Rebuilds < 1 {
			t.Fatalf("index fresh without any rebuild after mutation: %+v", stats.CH)
		}
	}
	if resp := getJSON(t, ts.URL+"/route?from=G&to=D&algo=ch", &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("ch route during rebuild: status %d", resp.StatusCode)
	}
	if !rr.Found {
		t.Fatalf("ch route during rebuild not found: %+v", rr)
	}
	// The stale index never serves: the response is either the rebuilt
	// index's (fresh) or Dijkstra's — both carry current costs.
	if rr.Algorithm != "ch" && rr.Algorithm != "dijkstra" {
		t.Fatalf("served by %q during rebuild window", rr.Algorithm)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/stats", &stats)
		if stats.CH.Fresh {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("index did not become fresh: %+v", stats.CH)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
