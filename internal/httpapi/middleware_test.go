package httpapi

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpls"
	"repro/internal/route"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// newInstrumentedServer returns a test server plus the route service behind
// it, so tests can assert against the shared registry.
func newInstrumentedServer(t *testing.T) (*httptest.Server, *route.Service) {
	t.Helper()
	svc := route.NewService(mpls.MustGenerate(mpls.Config{}))
	srv := NewServer(svc, WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, svc
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	resp, err := http.Get(ts.URL + "/map")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
}

func TestRequestIDHonoredWhenSupplied(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/map", nil)
	req.Header.Set("X-Request-ID", "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-abc-123" {
		t.Fatalf("X-Request-ID = %q, want the caller's trace-abc-123", got)
	}
}

// TestRequestIDRejectedWhenUnsafe asserts oversized or unsafe-charset
// client ids are replaced with a fresh one instead of being echoed into the
// response header and every log line.
func TestRequestIDRejectedWhenUnsafe(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	fresh := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for name, id := range map[string]string{
		"too long":     strings.Repeat("a", maxRequestIDLen+1),
		"spaces":       "abc def",
		"tab":          "abc\tdef",
		"header-ish":   "abc,evil=1",
		"curly braces": "{injected}",
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/map", nil)
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-ID")
		if got == id || !fresh.MatchString(got) {
			t.Errorf("%s: X-Request-ID = %q, want a fresh generated id", name, got)
		}
	}
}

// TestStatusWriterPassthroughs asserts the instrumented wrapper still
// exposes the optional ResponseWriter capabilities of the writer beneath it.
func TestStatusWriterPassthroughs(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	var _ http.Flusher = sw
	var _ http.Hijacker = sw
	var _ io.ReaderFrom = sw
	sw.Flush() // httptest.ResponseRecorder implements http.Flusher
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if n, err := sw.ReadFrom(strings.NewReader("hello")); err != nil || n != 5 {
		t.Errorf("ReadFrom = (%d, %v), want (5, nil)", n, err)
	}
	if sw.bytes != 5 || sw.status != http.StatusOK {
		t.Errorf("ReadFrom accounting: bytes=%d status=%d", sw.bytes, sw.status)
	}
	if _, _, err := sw.Hijack(); err == nil {
		t.Error("Hijack on a non-hijackable writer should error, not panic")
	}
}

// TestStatusCodeCounters drives requests with known outcomes and asserts
// the middleware accounted each under the right (path, method, code) series.
func TestStatusCodeCounters(t *testing.T) {
	ts, svc := newInstrumentedServer(t)

	get := func(path string, wantStatus int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
	get("/route?from=A&to=B", http.StatusOK)
	get("/route?from=A&to=B", http.StatusOK)
	get("/route?from=nope&to=B", http.StatusBadRequest)
	get("/traffic", http.StatusMethodNotAllowed) // GET on a POST endpoint

	reg := svc.Registry()
	check := func(path, method string, code, want int) {
		t.Helper()
		got := reg.Counter("atis_http_requests_total", "",
			telemetry.L("path", path), telemetry.L("method", method),
			telemetry.L("code", fmt.Sprint(code))).Value()
		if got != uint64(want) {
			t.Errorf("requests{%s,%s,%d} = %d, want %d", path, method, code, got, want)
		}
	}
	check("/route", "GET", 200, 2)
	check("/route", "GET", 400, 1)
	check("/traffic", "GET", 405, 1)
}

// TestLatencyHistogramPerPath asserts each served path accrues histogram
// observations under its own label.
func TestLatencyHistogramPerPath(t *testing.T) {
	ts, svc := newInstrumentedServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	h := svc.Registry().Histogram("atis_http_request_seconds", "", nil, telemetry.L("path", "/stats"))
	if got := h.Count(); got != 3 {
		t.Fatalf("latency histogram count for /stats = %d, want 3", got)
	}
	if h.Sum() < 0 {
		t.Fatalf("latency sum negative: %v", h.Sum())
	}
}

// TestMetricsEndpoint asserts GET /metrics serves Prometheus text covering
// the whole stack: HTTP middleware, route cache, and — with the recorder
// enabled — the search kernels.
func TestMetricsEndpoint(t *testing.T) {
	ts, svc := newInstrumentedServer(t)
	search.EnableTelemetry(svc.Registry())
	defer search.SetRecorder(nil)

	// One cold route (miss + one search run), one warm (hit, no search).
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/route?from=A&to=B&algo=dijkstra")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`atis_http_requests_total{code="200",method="GET",path="/route"} 2`,
		`atis_http_request_seconds_count{path="/route"} 2`,
		"atis_http_in_flight 1", // the /metrics scrape itself
		`atis_route_cache_requests_total{result="miss"} 1`,
		`atis_route_cache_requests_total{result="hit"} 1`,
		`atis_search_runs_total{algo="dijkstra"} 1`,
		`atis_search_expansions_total{algo="dijkstra"}`,
		`atis_search_heap_pushes_total{algo="dijkstra"}`,
		`atis_route_compute_seconds_count{algo="dijkstra"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full export:\n%s", out)
	}
}

// TestStatsMatchesMetrics is the satellite guarantee: the legacy /stats JSON
// and /metrics read the same instruments and can never disagree.
func TestStatsMatchesMetrics(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/route?from=A&to=C")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var stats struct {
		CacheHits   uint64 `json:"cacheHits"`
		CacheMisses uint64 `json:"cacheMisses"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.CacheHits != 2 || stats.CacheMisses != 1 {
		t.Fatalf("/stats = %+v, want 2 hits / 1 miss", stats)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf(`atis_route_cache_requests_total{result="hit"} %d`, stats.CacheHits),
		fmt.Sprintf(`atis_route_cache_requests_total{result="miss"} %d`, stats.CacheMisses),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q — /stats and /metrics disagree", want)
		}
	}
}

// TestCounterConsistencyUnderLoad is the -race stress gate: parallel route
// queries race with traffic mutations and scrapes, then the summed request
// counters must equal the requests issued.
func TestCounterConsistencyUnderLoad(t *testing.T) {
	ts, svc := newInstrumentedServer(t)
	search.EnableTelemetry(svc.Registry())
	defer search.SetRecorder(nil)

	const readers, perReader, writers, perWriter = 8, 25, 2, 10
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perReader; j++ {
				algo := []string{"dijkstra", "astar-euclidean", "bidirectional"}[j%3]
				resp, err := http.Get(fmt.Sprintf("%s/route?from=%d&to=%d&algo=%s", ts.URL, i, 40+j%20, algo))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				body := `{"x":16,"y":16,"radius":30,"factor":1.5}`
				resp, err := http.Post(ts.URL+"/traffic", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Concurrent scrapes must not disturb the counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	reg := svc.Registry()
	routeTotal := uint64(0)
	for _, code := range []string{"200", "400", "404"} {
		routeTotal += reg.Counter("atis_http_requests_total",
			"", telemetry.L("path", "/route"), telemetry.L("method", "GET"),
			telemetry.L("code", code)).Value()
	}
	if want := uint64(readers * perReader); routeTotal != want {
		t.Errorf("summed /route request counters = %d, want %d", routeTotal, want)
	}
	if got := reg.Counter("atis_http_requests_total", "",
		telemetry.L("path", "/traffic"), telemetry.L("method", "POST"),
		telemetry.L("code", "200")).Value(); got != writers*perWriter {
		t.Errorf("/traffic POST 200 = %d, want %d", got, writers*perWriter)
	}
	if got := reg.Counter("atis_traffic_updates_total", "").Value(); got != writers*perWriter {
		t.Errorf("atis_traffic_updates_total = %d, want %d", got, writers*perWriter)
	}
	hits, misses, _ := svc.CacheStats()
	if hits+misses != uint64(readers*perReader) {
		t.Errorf("cache hits+misses = %d, want %d (every /route is exactly one lookup)",
			hits+misses, readers*perReader)
	}
	// In-flight gauge must settle back to zero once the load drains.
	if got := reg.Gauge("atis_http_in_flight", "").Value(); got != 0 {
		t.Errorf("atis_http_in_flight = %d after drain, want 0", got)
	}
}
