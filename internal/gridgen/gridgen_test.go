package gridgen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestGenerateCounts(t *testing.T) {
	for _, k := range []int{2, 3, 10, 20, 30} {
		g := MustGenerate(Config{K: k})
		if got, want := g.NumNodes(), k*k; got != want {
			t.Errorf("k=%d: nodes = %d, want %d", k, got, want)
		}
		if got, want := g.NumEdges(), 4*k*(k-1); got != want {
			t.Errorf("k=%d: edges = %d, want %d", k, got, want)
		}
	}
}

// The 30×30 grid must match Table 4A: |R| = 900 nodes, |S| = 3480 edges.
func TestTable4AParameters(t *testing.T) {
	g := MustGenerate(Config{K: 30})
	if g.NumNodes() != 900 {
		t.Errorf("|R| = %d, want 900", g.NumNodes())
	}
	if g.NumEdges() != 3480 {
		t.Errorf("|S| = %d, want 3480", g.NumEdges())
	}
}

func TestGenerateRejectsTinyK(t *testing.T) {
	for _, k := range []int{-1, 0, 1} {
		if _, err := Generate(Config{K: k}); err == nil {
			t.Errorf("Generate accepted K=%d", k)
		}
	}
}

func TestUniformCosts(t *testing.T) {
	g := MustGenerate(Config{K: 5, Model: Uniform})
	for _, e := range g.Edges() {
		if e.Cost != 1 {
			t.Fatalf("uniform edge (%d,%d) cost %v", e.Tail, e.Head, e.Cost)
		}
	}
}

func TestVarianceCostsInRangeAndSymmetric(t *testing.T) {
	g := MustGenerate(Config{K: 8, Model: Variance, Seed: 3})
	sawVariation := false
	for _, e := range g.Edges() {
		if e.Cost < 1 || e.Cost > 1.2 {
			t.Fatalf("variance edge cost %v outside [1, 1.2]", e.Cost)
		}
		if e.Cost != 1 {
			sawVariation = true
		}
		// Paired directions share the segment cost.
		back, ok := g.ArcCost(e.Head, e.Tail)
		if !ok {
			t.Fatalf("grid edge (%d,%d) has no reverse", e.Tail, e.Head)
		}
		if back != e.Cost {
			t.Fatalf("asymmetric segment cost: %v vs %v", e.Cost, back)
		}
	}
	if !sawVariation {
		t.Error("variance model produced all-unit costs")
	}
}

func TestVarianceAmountOverride(t *testing.T) {
	g := MustGenerate(Config{K: 6, Model: Variance, Seed: 1, VarianceAmount: 0.5})
	max := 1.0
	for _, e := range g.Edges() {
		if e.Cost > max {
			max = e.Cost
		}
	}
	if max <= 1.2 {
		t.Errorf("override to 0.5 variance had no effect (max %v)", max)
	}
	if max > 1.5 {
		t.Errorf("cost %v above 1.5", max)
	}
}

func TestVarianceDeterminism(t *testing.T) {
	a := MustGenerate(Config{K: 7, Model: Variance, Seed: 99})
	b := MustGenerate(Config{K: 7, Model: Variance, Seed: 99})
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, different edge %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := MustGenerate(Config{K: 7, Model: Variance, Seed: 100})
	ec := c.Edges()
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestSkewedCorridor(t *testing.T) {
	const k = 6
	g := MustGenerate(Config{K: k, Model: Skewed})
	// Bottom-row horizontal edges are cheap.
	for col := 0; col+1 < k; col++ {
		c, ok := g.ArcCost(NodeAt(k, 0, col), NodeAt(k, 0, col+1))
		if !ok || c != 0.1 {
			t.Errorf("bottom edge col %d cost %v, want 0.1", col, c)
		}
	}
	// Right-column vertical edges are cheap.
	for row := 0; row+1 < k; row++ {
		c, ok := g.ArcCost(NodeAt(k, row, k-1), NodeAt(k, row+1, k-1))
		if !ok || c != 0.1 {
			t.Errorf("right edge row %d cost %v, want 0.1", row, c)
		}
	}
	// Interior edges are unit.
	if c, _ := g.ArcCost(NodeAt(k, 2, 2), NodeAt(k, 2, 3)); c != 1 {
		t.Errorf("interior horizontal cost %v, want 1", c)
	}
	if c, _ := g.ArcCost(NodeAt(k, 2, 2), NodeAt(k, 3, 2)); c != 1 {
		t.Errorf("interior vertical cost %v, want 1", c)
	}
	// Top-row horizontal edges are NOT cheap.
	if c, _ := g.ArcCost(NodeAt(k, k-1, 0), NodeAt(k, k-1, 1)); c != 1 {
		t.Errorf("top-row cost %v, want 1", c)
	}
}

func TestSkewCostOverride(t *testing.T) {
	g := MustGenerate(Config{K: 4, Model: Skewed, SkewCost: 0.25})
	if c, _ := g.ArcCost(NodeAt(4, 0, 0), NodeAt(4, 0, 1)); c != 0.25 {
		t.Errorf("cost %v, want 0.25", c)
	}
}

func TestNodeAtAndCoordinates(t *testing.T) {
	const k = 5
	g := MustGenerate(Config{K: k})
	for row := 0; row < k; row++ {
		for col := 0; col < k; col++ {
			u := NodeAt(k, row, col)
			p := g.Point(u)
			if p.X != float64(col) || p.Y != float64(row) {
				t.Fatalf("node (%d,%d) has coords %v", row, col, p)
			}
		}
	}
}

func TestDegrees(t *testing.T) {
	const k = 4
	g := MustGenerate(Config{K: k})
	// Corners have degree 2, edges 3, interior 4.
	wantDegree := func(row, col int) int {
		d := 4
		if row == 0 || row == k-1 {
			d--
		}
		if col == 0 || col == k-1 {
			d--
		}
		return d
	}
	for row := 0; row < k; row++ {
		for col := 0; col < k; col++ {
			u := NodeAt(k, row, col)
			if got, want := g.OutDegree(u), wantDegree(row, col); got != want {
				t.Errorf("degree(%d,%d) = %d, want %d", row, col, got, want)
			}
		}
	}
}

func TestPairs(t *testing.T) {
	const k = 30
	s, d := Pair(k, Horizontal, 0)
	if s != NodeAt(k, 0, 0) || d != NodeAt(k, 0, 29) {
		t.Errorf("horizontal pair = %d,%d", s, d)
	}
	s, d = Pair(k, Diagonal, 0)
	if s != NodeAt(k, 0, 0) || d != NodeAt(k, 29, 29) {
		t.Errorf("diagonal pair = %d,%d", s, d)
	}
	s, d = Pair(k, SemiDiagonal, 0)
	if s != NodeAt(k, 0, 0) || d != NodeAt(k, 29, 14) {
		t.Errorf("semi-diagonal pair = %d,%d", s, d)
	}
}

func TestPairLengths(t *testing.T) {
	// Path lengths L from the paper's setup: horizontal k−1, diagonal
	// 2(k−1), semi-diagonal in between.
	if got := ManhattanEdges(30, Horizontal); got != 29 {
		t.Errorf("horizontal L = %d, want 29", got)
	}
	if got := ManhattanEdges(30, Diagonal); got != 58 {
		t.Errorf("diagonal L = %d, want 58", got)
	}
	if got := ManhattanEdges(30, SemiDiagonal); got != 43 {
		t.Errorf("semi-diagonal L = %d, want 43", got)
	}
}

func TestRandomPair(t *testing.T) {
	s1, d1 := Pair(10, Random, 5)
	s2, d2 := Pair(10, Random, 5)
	if s1 != s2 || d1 != d2 {
		t.Error("random pair not deterministic for fixed seed")
	}
	if s1 == d1 {
		t.Error("random pair degenerate (s == d)")
	}
	if s1 < 0 || int(s1) >= 100 || d1 < 0 || int(d1) >= 100 {
		t.Errorf("random pair out of range: %d,%d", s1, d1)
	}
}

func TestGridIsConnected(t *testing.T) {
	g := MustGenerate(Config{K: 6, Model: Variance, Seed: 8})
	// BFS from node 0 must reach all nodes.
	seen := make([]bool, g.NumNodes())
	queue := []graph.NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.Neighbors(u, func(a graph.Arc) {
			if !seen[a.Head] {
				seen[a.Head] = true
				count++
				queue = append(queue, a.Head)
			}
		})
	}
	if count != g.NumNodes() {
		t.Errorf("reached %d of %d nodes", count, g.NumNodes())
	}
}

func TestSkewedDiagonalCorridorIsCheapest(t *testing.T) {
	// The L-shaped corridor (bottom row then right column) must be the
	// cheapest route corner to corner: 2(k−1)·skew < any mixed route.
	const k = 10
	g := MustGenerate(Config{K: k, Model: Skewed})
	var corridor float64
	for col := 0; col+1 < k; col++ {
		c, _ := g.ArcCost(NodeAt(k, 0, col), NodeAt(k, 0, col+1))
		corridor += c
	}
	for row := 0; row+1 < k; row++ {
		c, _ := g.ArcCost(NodeAt(k, row, k-1), NodeAt(k, row+1, k-1))
		corridor += c
	}
	want := 2 * float64(k-1) * 0.1
	if math.Abs(corridor-want) > 1e-9 {
		t.Errorf("corridor cost %v, want %v", corridor, want)
	}
}
