// Package gridgen generates the synthetic grid benchmark of Section 5.1 of
// the paper: two-dimensional k×k grids with 4-neighbour connectivity, the
// three edge-cost models (uniform, uniform with 20% variance, skewed), and
// the benchmark node pairs (horizontal, semi-diagonal, diagonal, random).
//
// Layout convention: node (row, col) has id row*k + col and coordinates
// (x, y) = (col, row). Each undirected grid segment is stored as two
// directed edges (Section 4's relational convention), so a k×k grid has
// 4·k·(k−1) directed edges — 3480 for the paper's 30×30 grid, matching the
// |S| parameter of Table 4A.
package gridgen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// CostModel selects one of the paper's three edge-cost models.
type CostModel int

const (
	// Uniform assigns unit cost to every edge.
	Uniform CostModel = iota
	// Variance assigns 1 + v·U[0,1] per undirected segment (v = 0.2 in the
	// paper: "uniform cost with 20% variation"). Both directions of a
	// segment share the cost.
	Variance
	// Skewed assigns a small cost to the bottom-row horizontal edges and
	// the right-column vertical edges, unit cost elsewhere. For the
	// diagonal pair this creates a cheap L-shaped corridor that eliminates
	// backtracking for estimator-based search — the paper's best case for
	// A* version 3.
	Skewed
)

// String names the model as the experiment tables do.
func (m CostModel) String() string {
	switch m {
	case Uniform:
		return "uniform"
	case Variance:
		return "20% variance"
	case Skewed:
		return "skewed"
	default:
		return fmt.Sprintf("CostModel(%d)", int(m))
	}
}

// Config parameterises grid generation.
type Config struct {
	// K is the grid side: the grid has K×K nodes. Must be at least 2.
	K int
	// Model is the edge-cost model.
	Model CostModel
	// Seed drives the Variance model's pseudo-random costs. Runs with equal
	// Config produce identical graphs.
	Seed int64
	// VarianceAmount overrides the Variance model's spread; 0 means the
	// paper's 0.2.
	VarianceAmount float64
	// SkewCost overrides the Skewed model's cheap-edge cost; 0 means 0.1.
	SkewCost float64
}

// Generate builds the grid graph for cfg.
func Generate(cfg Config) (*graph.Graph, error) {
	k := cfg.K
	if k < 2 {
		return nil, fmt.Errorf("gridgen: K = %d, need at least 2", k)
	}
	variance := cfg.VarianceAmount
	if variance == 0 {
		variance = 0.2
	}
	skew := cfg.SkewCost
	if skew == 0 {
		skew = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := graph.NewBuilder(k*k, 4*k*(k-1))
	for row := 0; row < k; row++ {
		for col := 0; col < k; col++ {
			b.AddNode(float64(col), float64(row))
		}
	}

	cost := func(horizontal bool, row, col int) float64 {
		switch cfg.Model {
		case Uniform:
			return 1
		case Variance:
			return 1 + variance*rng.Float64()
		case Skewed:
			if horizontal && row == 0 {
				return skew // bottom-row corridor
			}
			if !horizontal && col == k-1 {
				return skew // right-column corridor
			}
			return 1
		default:
			return 1
		}
	}

	for row := 0; row < k; row++ {
		for col := 0; col < k; col++ {
			u := NodeAt(k, row, col)
			if col+1 < k {
				b.AddUndirectedEdge(u, NodeAt(k, row, col+1), cost(true, row, col))
			}
			if row+1 < k {
				b.AddUndirectedEdge(u, NodeAt(k, row+1, col), cost(false, row, col))
			}
		}
	}
	return b.Build()
}

// MustGenerate is Generate that panics on error, for fixed valid configs.
func MustGenerate(cfg Config) *graph.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// NodeAt returns the id of the node at (row, col) in a k×k grid.
func NodeAt(k, row, col int) graph.NodeID {
	return graph.NodeID(row*k + col)
}

// PairKind selects one of the benchmark node pairs of Figure 4 and the
// path-length experiment of Section 5.1.2.
type PairKind int

const (
	// Horizontal: linearly opposite nodes along the bottom row,
	// (0,0) → (0,k−1); the shortest grid path has k−1 edges.
	Horizontal PairKind = iota
	// SemiDiagonal: (0,0) → (k−1, ⌊(k−1)/2⌋); about 1.5·(k−1) edges.
	SemiDiagonal
	// Diagonal: diagonally opposite corners (0,0) → (k−1,k−1); 2·(k−1)
	// edges, the grid diameter and the paper's worst case.
	Diagonal
	// Random: a uniformly random distinct pair (seeded; see Pair).
	Random
)

// String names the pair as the experiment tables do.
func (p PairKind) String() string {
	switch p {
	case Horizontal:
		return "horizontal"
	case SemiDiagonal:
		return "semi-diagonal"
	case Diagonal:
		return "diagonal"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("PairKind(%d)", int(p))
	}
}

// Pair returns the (source, destination) nodes of the given kind for a k×k
// grid. The Random kind derives the pair from seed; other kinds ignore it.
func Pair(k int, kind PairKind, seed int64) (s, d graph.NodeID) {
	switch kind {
	case Horizontal:
		return NodeAt(k, 0, 0), NodeAt(k, 0, k-1)
	case SemiDiagonal:
		return NodeAt(k, 0, 0), NodeAt(k, k-1, (k-1)/2)
	case Diagonal:
		return NodeAt(k, 0, 0), NodeAt(k, k-1, k-1)
	case Random:
		rng := rand.New(rand.NewSource(seed))
		s = graph.NodeID(rng.Intn(k * k))
		d = s
		for d == s {
			d = graph.NodeID(rng.Intn(k * k))
		}
		return s, d
	default:
		return NodeAt(k, 0, 0), NodeAt(k, k-1, k-1)
	}
}

// ManhattanEdges returns the number of edges on any monotone shortest grid
// path between the pair — the paper's path length L for uniform costs.
func ManhattanEdges(k int, kind PairKind) int {
	s, d := Pair(k, kind, 0)
	sr, sc := int(s)/k, int(s)%k
	dr, dc := int(d)/k, int(d)%k
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(sr-dr) + abs(sc-dc)
}
