// Package tracing is the per-request observability layer the aggregate
// metrics of internal/telemetry cannot provide: lightweight in-process
// span trees carried through context.Context, so a single slow request
// can say *where* it spent its time — admission queue, cache miss, CH
// upward search, Dijkstra stale-fallback, or shortcut unpacking — rather
// than only moving a histogram bucket.
//
// The design has three rules:
//
//   - Zero-alloc no-op when disabled. Instrumentation sites call
//     Start(ctx, name) unconditionally; with no active trace in ctx the
//     call returns a nil *Span whose methods are all nil-safe no-ops and
//     performs no allocation. The warm-kernel benchmarks (make
//     bench-trace) hold the disabled overhead under 1% with 0 extra
//     allocations.
//
//   - Tail-based slow capture, head-sampled rest. When a Tracer is
//     enabled every request builds a span tree (the cost is a handful of
//     small allocations per request); at Finish, a trace slower than the
//     slow threshold is always captured, and the rest are kept only when
//     the deterministic head-sampling decision — a hash of the trace id
//     against the sample rate — said so at the start. A slow request can
//     therefore never escape capture because the sampler was unlucky.
//
//   - W3C trace context at the edges. The HTTP middleware ingests an
//     incoming traceparent header (so an upstream gateway's trace id
//     names our spans too) and echoes one carrying the root span id, so
//     a distributed trace stitches across the fleet.
//
// Completed traces land in fixed-size lock-striped ring buffers (recent
// and slow), exposed by the server as GET /v1/debug/traces and
// /v1/debug/traces/{id}. OpenMetrics exemplars on the latency histograms
// (telemetry.Histogram.ObserveExemplar) link a /metrics bucket to the
// trace id that landed in it.
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Tracer. A Tracer with neither SampleRate nor
// SlowThreshold set is disabled: no trace is ever started and the whole
// request path stays on the nil-span fast path.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1]: the fraction
	// of traces captured into the recent ring regardless of latency. The
	// decision is a deterministic function of the trace id, so one request
	// is either sampled at every hop or at none.
	SampleRate float64
	// SlowThreshold enables tail-based capture: every trace whose root
	// span runs at least this long is captured into the slow ring, whatever
	// the sampling decision. 0 disables slow capture.
	SlowThreshold time.Duration
	// Capacity is the number of completed traces each ring (recent and
	// slow) retains before evicting the oldest; 0 means 256.
	Capacity int
}

// Tracer owns the capture policy and the rings of completed traces. A
// nil *Tracer is valid and permanently disabled — every method is
// nil-safe, so callers thread one pointer without guarding.
type Tracer struct {
	sampleRate float64
	sampleCut  uint64 // sampleRate mapped onto the uint64 hash space
	slow       time.Duration
	recent     *ring
	slowRing   *ring
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Tracer{
		sampleRate: rate,
		sampleCut:  uint64(rate * float64(math.MaxUint64)),
		slow:       cfg.SlowThreshold,
		recent:     newRing(cfg.Capacity),
		slowRing:   newRing(cfg.Capacity),
	}
}

// Enabled reports whether this tracer captures anything at all.
func (t *Tracer) Enabled() bool {
	return t != nil && (t.sampleRate > 0 || t.slow > 0)
}

// SlowThreshold returns the tail-capture threshold (0 when disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// sampled is the deterministic head-sampling decision for a trace id:
// a hash of the id compared against the rate's share of the hash space.
// The same id always decides the same way, so one request is sampled at
// every hop or at none. FNV-1a alone leaves its high bits correlated
// for near-identical ids (a gateway minting sequential ones would be
// sampled all-or-nothing), so an avalanche finalizer spreads the
// decision bits.
func (t *Tracer) sampled(traceID string) bool {
	if t.sampleRate >= 1 {
		return true
	}
	if t.sampleRate <= 0 {
		return false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(traceID); i++ {
		h ^= uint64(traceID[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h < t.sampleCut
}

// Trace is one request's span tree plus the capture metadata. All span
// mutation goes through mu, so concurrent children (the batch fan-out's
// worker pool) and debug-endpoint snapshots never race.
type Trace struct {
	id         string // 32 lowercase hex chars (W3C trace-id)
	rootSpanID string // 16 hex chars, minted here, echoed in traceparent
	upstream   string // parent span id from an incoming traceparent, "" if none
	sampled    bool

	mu   sync.Mutex
	root *Span
	slow atomic.Bool // set at Finish; read by the debug endpoints
}

// ID returns the trace id.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Root returns the root span (nil on a nil trace).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Sampled reports the head-sampling decision made at start.
func (tr *Trace) Sampled() bool { return tr != nil && tr.sampled }

// Traceparent renders the outgoing W3C traceparent header for this
// trace: our root span id as the parent-id, the sampled flag from the
// head-sampling decision.
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	return formatTraceparent(tr.id, tr.rootSpanID, tr.sampled)
}

// StartRequest begins a trace for one inbound request. traceparent is
// the raw incoming header ("" or malformed values mint a fresh trace
// id). The returned context carries the root span, so every
// tracing.Start below the middleware attaches to this tree. Returns
// (ctx, nil) when the tracer is disabled.
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Trace) {
	if !t.Enabled() {
		return ctx, nil
	}
	traceID, upstream, ok := ParseTraceparent(traceparent)
	if !ok {
		traceID = newHexID(16)
	}
	tr := &Trace{
		id:         traceID,
		rootSpanID: newHexID(8),
		upstream:   upstream,
		sampled:    t.sampled(traceID),
	}
	tr.root = &Span{tr: tr, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, tr.root), tr
}

// StartBackground begins a trace for work not tied to a request — the
// singleflight CH rebuild. Background traces are always head-sampled:
// they are rare, operator-initiated-or-structural events worth keeping.
func (t *Tracer) StartBackground(name string) (context.Context, *Trace) {
	if !t.Enabled() {
		return context.Background(), nil
	}
	tr := &Trace{id: newHexID(16), rootSpanID: newHexID(8), sampled: true}
	tr.root = &Span{tr: tr, name: name, start: time.Now()}
	return context.WithValue(context.Background(), spanKey{}, tr.root), tr
}

// Finish ends the trace's root span (if still open) and applies the
// capture policy: into the slow ring when the root ran past the slow
// threshold, into the recent ring when head-sampled. It reports whether
// the trace was captured at all — the caller links an exemplar to the
// latency histogram only for retrievable traces.
func (t *Tracer) Finish(tr *Trace) (captured bool) {
	if t == nil || tr == nil {
		return false
	}
	tr.mu.Lock()
	if tr.root.end.IsZero() {
		tr.root.end = time.Now()
	}
	d := tr.root.end.Sub(tr.root.start)
	tr.mu.Unlock()
	if t.slow > 0 && d >= t.slow {
		tr.slow.Store(true)
		t.slowRing.add(tr)
		captured = true
	}
	if tr.sampled {
		t.recent.add(tr)
		captured = true
	}
	return captured
}

// Get returns the snapshot of a captured trace by id.
func (t *Tracer) Get(id string) (Snapshot, bool) {
	if t == nil {
		return Snapshot{}, false
	}
	tr := t.slowRing.get(id)
	if tr == nil {
		tr = t.recent.get(id)
	}
	if tr == nil {
		return Snapshot{}, false
	}
	return tr.snapshot(), true
}

// Recent returns up to n captured traces, newest first.
func (t *Tracer) Recent(n int) []Summary {
	if t == nil {
		return nil
	}
	return summarize(t.recent.all(), n, func(a, b *Trace) bool {
		return a.root.start.After(b.root.start)
	})
}

// Slowest returns up to n slow-captured traces, longest first.
func (t *Tracer) Slowest(n int) []Summary {
	if t == nil {
		return nil
	}
	return summarize(t.slowRing.all(), n, func(a, b *Trace) bool {
		return a.root.duration() > b.root.duration()
	})
}

// spanKey carries the active span through a context.
type spanKey struct{}

// Span is one timed operation in a trace. The nil *Span is the disabled
// fast path: every method checks the receiver, so instrumentation sites
// never branch on tracer state themselves. Attribute arguments are
// still evaluated at a nil call site, so keep them allocation-free
// (constants, existing strings, integer casts).
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Start begins a child of the active span in ctx and returns a context
// carrying it. Outside a traced request (or with tracing disabled) it
// returns ctx unchanged and a nil span, allocating nothing. Every Start
// must be paired with End — atislint's spanend analyzer enforces a
// deferred or all-paths End on pain of CI.
//
//atis:hotpath
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	//lint:ignore hotpath enabled path: the span node is a traced request's deliberate cost
	sp := &Span{tr: parent.tr, name: name, start: time.Now()}
	parent.tr.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.tr.mu.Unlock()
	//lint:ignore hotpath enabled path: propagating the child span needs a new context node
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// FromContext returns the active span, or nil (a no-op span) when ctx
// carries none — for annotating the current phase without opening a new
// span.
//
//atis:hotpath
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// End closes the span. Safe on nil and idempotent (the first End wins).
//
//atis:hotpath
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// TraceID returns the owning trace's id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// The setters nil-check before the value reaches an `any` parameter:
// boxing a string or float into an interface allocates, and that must
// not happen on the disabled (nil-span) path.

// SetStr attaches a string attribute.
//
//atis:hotpath
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	//lint:ignore hotpath enabled path: boxing the attribute is a traced request's deliberate cost
	s.set(key, v)
}

// SetInt attaches an integer attribute.
//
//atis:hotpath
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	//lint:ignore hotpath enabled path: boxing the attribute is a traced request's deliberate cost
	s.set(key, v)
}

// SetFloat attaches a float attribute.
//
//atis:hotpath
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	//lint:ignore hotpath enabled path: boxing the attribute is a traced request's deliberate cost
	s.set(key, v)
}

// SetBool attaches a boolean attribute.
//
//atis:hotpath
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	//lint:ignore hotpath enabled path: boxing the attribute is a traced request's deliberate cost
	s.set(key, v)
}

func (s *Span) set(key string, v any) {
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.tr.mu.Unlock()
}

// duration returns the span's wall time, 0 while still open. Callers
// hold tr.mu or own the only reference.
func (s *Span) duration() time.Duration {
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// newHexID returns 2n lowercase hex chars of cryptographic randomness,
// falling back to a process-local counter if the source fails.
func newHexID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[:8], idFallback.Add(1))
	}
	return hex.EncodeToString(b)
}

var idFallback atomic.Uint64
