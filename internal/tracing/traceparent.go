package tracing

// W3C Trace Context traceparent header codec. Format (version 00):
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// We ingest the trace-id so an upstream gateway's trace names our spans
// too, record the parent-id for the snapshot, and echo a header whose
// parent-id is our root span — the standard propagation contract.

const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceparent extracts the trace id and parent span id from a raw
// traceparent header. ok is false for empty, malformed, all-zero, or
// unknown-version values — callers then mint a fresh trace id.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) != traceparentLen || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	// Version ff is invalid per spec; other versions are treated as 00
	// (forward compatibility: parse the fields we know).
	if !isHexLower(h[:2]) || h[:2] == "ff" {
		return "", "", false
	}
	traceID, parentID = h[3:35], h[36:52]
	if !isHexLower(traceID) || !isHexLower(parentID) || !isHexLower(h[53:55]) {
		return "", "", false
	}
	if allZero(traceID) || allZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func formatTraceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
