package tracing

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx, trace := tr.StartRequest(context.Background(), "req", in)
	if trace == nil {
		t.Fatal("enabled tracer returned nil trace")
	}
	if got := trace.ID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not ingested from traceparent: %q", got)
	}
	if trace.upstream != "00f067aa0ba902b7" {
		t.Fatalf("upstream parent id = %q", trace.upstream)
	}
	out := trace.Traceparent()
	gotID, gotParent, ok := ParseTraceparent(out)
	if !ok {
		t.Fatalf("echoed traceparent does not re-parse: %q", out)
	}
	if gotID != trace.ID() {
		t.Fatalf("echo trace id = %q, want %q", gotID, trace.ID())
	}
	if gotParent != trace.rootSpanID {
		t.Fatalf("echo parent id = %q, want root span %q", gotParent, trace.rootSpanID)
	}
	if !strings.HasSuffix(out, "-01") {
		t.Fatalf("sampled trace must echo flags 01: %q", out)
	}
	_ = ctx
}

func TestTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-bad-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",  // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",  // wrong separators
		"000-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong length
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	tr := New(Config{SampleRate: 1})
	_, trace := tr.StartRequest(context.Background(), "req", "garbage")
	if trace == nil || len(trace.ID()) != 32 {
		t.Fatalf("malformed header must mint a fresh 32-hex trace id, got %+v", trace)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tr := New(Config{SampleRate: 0.5})
	id := "4bf92f3577b34da6a3ce929d0e0e4736"
	first := tr.sampled(id)
	for i := 0; i < 100; i++ {
		if tr.sampled(id) != first {
			t.Fatal("sampling decision changed for the same trace id")
		}
	}
	// Rate 0 and 1 are exact, not probabilistic.
	all, none := New(Config{SampleRate: 1}), New(Config{SampleRate: 0.0, SlowThreshold: time.Hour})
	hit := 0
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("%032x", i+1)
		if !all.sampled(id) {
			t.Fatal("rate 1 must sample every id")
		}
		if none.sampled(id) {
			t.Fatal("rate 0 must sample no id")
		}
		if tr.sampled(id) {
			hit++
		}
	}
	// The hash spreads ids roughly uniformly; 0.5 over 1000 ids should
	// land well inside [350, 650].
	if hit < 350 || hit > 650 {
		t.Fatalf("rate 0.5 sampled %d/1000 ids — hash badly skewed", hit)
	}
}

func TestSlowCaptureRegardlessOfSampling(t *testing.T) {
	// Sample rate 0: head sampling never keeps anything, but a trace
	// past the slow threshold must still be captured.
	tr := New(Config{SampleRate: 0, SlowThreshold: time.Nanosecond})
	ctx, trace := tr.StartRequest(context.Background(), "req", "")
	if trace == nil {
		t.Fatal("slow-threshold-only tracer must be enabled")
	}
	_, sp := Start(ctx, "child")
	sp.SetStr("k", "v")
	sp.End()
	time.Sleep(time.Millisecond)
	if !tr.Finish(trace) {
		t.Fatal("slow trace not captured")
	}
	snap, ok := tr.Get(trace.ID())
	if !ok {
		t.Fatal("slow trace not retrievable by id")
	}
	if !snap.Slow || snap.Sampled {
		t.Fatalf("snapshot flags = slow:%v sampled:%v, want slow only", snap.Slow, snap.Sampled)
	}
	if len(snap.Root.Children) != 1 || snap.Root.Children[0].Name != "child" {
		t.Fatalf("span tree lost the child: %+v", snap.Root)
	}
	if snap.Root.Children[0].Attrs["k"] != "v" {
		t.Fatalf("child attrs = %+v", snap.Root.Children[0].Attrs)
	}
	if got := tr.Slowest(10); len(got) != 1 {
		t.Fatalf("Slowest = %d traces, want 1", len(got))
	}
	if got := tr.Recent(10); len(got) != 0 {
		t.Fatalf("Recent = %d traces, want 0 at sample rate 0", len(got))
	}
}

func TestFastSampledTraceNotSlow(t *testing.T) {
	tr := New(Config{SampleRate: 1, SlowThreshold: time.Hour})
	_, trace := tr.StartRequest(context.Background(), "req", "")
	if !tr.Finish(trace) {
		t.Fatal("sampled trace not captured")
	}
	snap, ok := tr.Get(trace.ID())
	if !ok || snap.Slow {
		t.Fatalf("fast trace: ok=%v slow=%v, want captured and not slow", ok, snap.Slow)
	}
	if len(tr.Slowest(10)) != 0 {
		t.Fatal("fast trace leaked into the slow ring")
	}
}

func TestRingEviction(t *testing.T) {
	// Capacity 8 across 8 shards = 1 slot per shard: the second trace
	// hashing to a shard must evict the first.
	tr := New(Config{SampleRate: 1, Capacity: 8})
	var ids []string
	for i := 0; i < 64; i++ {
		_, trace := tr.StartRequest(context.Background(), "req", "")
		tr.Finish(trace)
		ids = append(ids, trace.ID())
	}
	stored := 0
	for _, id := range ids {
		if _, ok := tr.Get(id); ok {
			stored++
		}
	}
	if stored > 8 {
		t.Fatalf("ring holds %d traces, capacity 8", stored)
	}
	// The newest trace in each shard survives; the very last Finish is
	// always retrievable.
	if _, ok := tr.Get(ids[len(ids)-1]); !ok {
		t.Fatal("most recent trace evicted")
	}
	if got := len(tr.Recent(100)); got > 8 {
		t.Fatalf("Recent returned %d, capacity 8", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	// Hammer Finish/Get/Recent from parallel goroutines; the race
	// detector is the assertion.
	tr := New(Config{SampleRate: 1, SlowThreshold: time.Nanosecond, Capacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, trace := tr.StartRequest(context.Background(), "req", "")
				_, sp := Start(ctx, "child")
				sp.SetInt("i", int64(i))
				sp.End()
				tr.Finish(trace)
				tr.Get(trace.ID())
				tr.Recent(5)
				tr.Slowest(5)
			}
		}()
	}
	wg.Wait()
}

func TestNestedSpanTree(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	ctx, trace := tr.StartRequest(context.Background(), "req", "")
	c1, sp1 := Start(ctx, "outer")
	_, sp2 := Start(c1, "inner")
	sp2.SetBool("ok", true)
	sp2.End()
	sp1.End()
	// A second child of the root, started from the root ctx.
	_, sp3 := Start(ctx, "sibling")
	sp3.End()
	tr.Finish(trace)
	snap, _ := tr.Get(trace.ID())
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Root.Children))
	}
	outer := snap.Root.Children[0]
	if outer.Name != "outer" || len(outer.Children) != 1 || outer.Children[0].Name != "inner" {
		t.Fatalf("nesting lost: %+v", snap.Root)
	}
}

func TestDisabledZeroAlloc(t *testing.T) {
	// The whole point of the nil-span design: with no trace in the
	// context, Start + setters + End allocate nothing.
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "kernel")
		sp.SetInt("expansions", 42)
		sp.SetStr("algo", "dijkstra")
		sp.SetFloat("cost", 12.5)
		sp.SetBool("found", true)
		FromContext(c).SetInt("depth", 3)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled Start/Set/End allocated %.1f per op, want 0", allocs)
	}
	// Same for a nil tracer end to end.
	var tr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		c, trace := tr.StartRequest(ctx, "req", "")
		tr.Finish(trace)
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("nil tracer StartRequest/Finish allocated %.1f per op, want 0", allocs)
	}
}

func TestBackgroundTrace(t *testing.T) {
	tr := New(Config{SampleRate: 0, SlowThreshold: time.Hour})
	ctx, trace := tr.StartBackground("ch.rebuild")
	if trace == nil {
		t.Fatal("enabled tracer must trace background work")
	}
	_, sp := Start(ctx, "ch.topology")
	sp.End()
	if !tr.Finish(trace) {
		t.Fatal("background trace must always be captured")
	}
	if _, ok := tr.Get(trace.ID()); !ok {
		t.Fatal("background trace not retrievable")
	}

	var nilTr *Tracer
	ctx2, trace2 := nilTr.StartBackground("ch.rebuild")
	if trace2 != nil || ctx2 == nil {
		t.Fatal("nil tracer StartBackground must no-op")
	}
}
