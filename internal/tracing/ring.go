package tracing

import "sync"

// ring is a fixed-capacity overwrite-oldest store of completed traces,
// lock-striped into shards so concurrent Finish calls from parallel
// request goroutines contend on a shard mutex, not one global lock. A
// trace lands in the shard its id hashes to, which also makes Get a
// single-shard scan.
const ringShards = 8

type ring struct {
	shards [ringShards]ringShard
}

type ringShard struct {
	mu     sync.Mutex
	buf    []*Trace // len == capacity once full; nil slots before that
	next   int      // index the next add overwrites
	filled bool
}

func newRing(capacity int) *ring {
	per := capacity / ringShards
	if per < 1 {
		per = 1
	}
	r := &ring{}
	for i := range r.shards {
		r.shards[i].buf = make([]*Trace, per)
	}
	return r
}

func (r *ring) shard(id string) *ringShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &r.shards[h%ringShards]
}

func (r *ring) add(tr *Trace) {
	s := r.shard(tr.id)
	s.mu.Lock()
	s.buf[s.next] = tr
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.filled = true
	}
	s.mu.Unlock()
}

// get returns the stored trace with the given id, newest occurrence
// first, or nil.
func (r *ring) get(id string) *Trace {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Scan backwards from the most recent slot so a re-captured id
	// resolves to its latest tree.
	n := len(s.buf)
	for i := 1; i <= n; i++ {
		tr := s.buf[(s.next-i+n)%n]
		if tr == nil {
			break
		}
		if tr.id == id {
			return tr
		}
	}
	return nil
}

// all snapshots every stored trace across shards.
func (r *ring) all() []*Trace {
	var out []*Trace
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, tr := range s.buf {
			if tr != nil {
				out = append(out, tr)
			}
		}
		s.mu.Unlock()
	}
	return out
}
