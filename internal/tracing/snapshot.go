package tracing

import (
	"sort"
	"time"
)

// Summary is the list-view projection of a captured trace, returned by
// the /v1/debug/traces index.
type Summary struct {
	TraceID    string  `json:"traceId"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"durationMs"`
	Spans      int     `json:"spans"`
	Slow       bool    `json:"slow"`
	Sampled    bool    `json:"sampled"`
}

// Snapshot is the full span tree of one captured trace, returned by
// /v1/debug/traces/{id}.
type Snapshot struct {
	TraceID    string   `json:"traceId"`
	RootSpanID string   `json:"rootSpanId"`
	Upstream   string   `json:"upstreamSpanId,omitempty"`
	Slow       bool     `json:"slow"`
	Sampled    bool     `json:"sampled"`
	Root       SpanNode `json:"root"`
}

// SpanNode is one span in a Snapshot tree.
type SpanNode struct {
	Name       string         `json:"name"`
	Start      string         `json:"start"`
	DurationMS float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanNode     `json:"children,omitempty"`
}

// snapshot deep-copies the span tree under the trace mutex, so the
// debug endpoints can marshal it while request goroutines still append
// children (batch items finishing after the root, background rebuilds).
func (tr *Trace) snapshot() Snapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return Snapshot{
		TraceID:    tr.id,
		RootSpanID: tr.rootSpanID,
		Upstream:   tr.upstream,
		Slow:       tr.slow.Load(),
		Sampled:    tr.sampled,
		Root:       snapshotSpan(tr.root),
	}
}

// snapshotSpan copies one span; caller holds tr.mu.
func snapshotSpan(s *Span) SpanNode {
	n := SpanNode{
		Name:       s.name,
		Start:      s.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(s.duration()) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, snapshotSpan(c))
	}
	return n
}

// summary projects the list view; takes tr.mu itself.
func (tr *Trace) summary() Summary {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return Summary{
		TraceID:    tr.id,
		Name:       tr.root.name,
		Start:      tr.root.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(tr.root.duration()) / float64(time.Millisecond),
		Spans:      countSpans(tr.root),
		Slow:       tr.slow.Load(),
		Sampled:    tr.sampled,
	}
}

// countSpans sizes the tree; caller holds tr.mu.
func countSpans(s *Span) int {
	n := 1
	for _, c := range s.children {
		n += countSpans(c)
	}
	return n
}

// summarize orders traces by less and returns the first n summaries.
func summarize(traces []*Trace, n int, less func(a, b *Trace) bool) []Summary {
	sort.Slice(traces, func(i, j int) bool { return less(traces[i], traces[j]) })
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	out := make([]Summary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.summary())
	}
	return out
}
