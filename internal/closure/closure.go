// Package closure implements the transitive-closure algorithm family the
// paper positions single-pair computation against (Section 1.2): the
// iterative (semi-naive) algorithm, logarithmic squaring, Warren's
// algorithm, DFS-based reachability, and cost-bearing all-pairs
// (Floyd–Warshall). The earlier database studies the paper cites compared
// exactly these; having them here lets the benchmarks quantify how much
// work all-pairs and single-source methods waste on a single-pair question.
//
// Reachability closures operate on a bit-matrix; AllPairs computes real
// shortest-path costs. All algorithms agree on their outputs — the tests
// cross-check every pair of them.
package closure

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// BitMatrix is a dense rows×cols boolean matrix in packed rows.
type BitMatrix struct {
	rows, cols int
	row        int // words per row
	bits       []uint64
}

// NewBitMatrix returns an n×n zero matrix.
func NewBitMatrix(n int) *BitMatrix { return NewBitMatrixRect(n, n) }

// NewBitMatrixRect returns a rows×cols zero matrix.
func NewBitMatrixRect(rows, cols int) *BitMatrix {
	row := (cols + 63) / 64
	return &BitMatrix{rows: rows, cols: cols, row: row, bits: make([]uint64, rows*row)}
}

// N returns the row count (the dimension, for square matrices).
func (m *BitMatrix) N() int { return m.rows }

// Cols returns the column count.
func (m *BitMatrix) Cols() int { return m.cols }

// Set sets entry (i, j).
func (m *BitMatrix) Set(i, j int) {
	m.bits[i*m.row+j/64] |= 1 << (j % 64)
}

// Get reports entry (i, j).
func (m *BitMatrix) Get(i, j int) bool {
	return m.bits[i*m.row+j/64]&(1<<(j%64)) != 0
}

// OrRow ors row src into row dst, reporting whether dst changed.
func (m *BitMatrix) OrRow(dst, src int) bool {
	changed := false
	d := m.bits[dst*m.row : (dst+1)*m.row]
	s := m.bits[src*m.row : (src+1)*m.row]
	for w := range d {
		if n := d[w] | s[w]; n != d[w] {
			d[w] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the matrix.
func (m *BitMatrix) Clone() *BitMatrix {
	c := NewBitMatrixRect(m.rows, m.cols)
	copy(c.bits, m.bits)
	return c
}

// Equal compares two matrices.
func (m *BitMatrix) Equal(o *BitMatrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set entries.
func (m *BitMatrix) Count() int {
	total := 0
	for _, w := range m.bits {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// adjacency builds the boolean adjacency matrix of g, with reflexive
// entries if reflexive is set (closures are usually taken over E ∪ I).
func adjacency(g *graph.Graph, reflexive bool) *BitMatrix {
	n := g.NumNodes()
	m := NewBitMatrix(n)
	for u := 0; u < n; u++ {
		if reflexive {
			m.Set(u, u)
		}
		g.Neighbors(graph.NodeID(u), func(a graph.Arc) {
			m.Set(u, int(a.Head))
		})
	}
	return m
}

// Stats reports the work a closure algorithm performed, in its natural
// unit.
type Stats struct {
	// Passes is the number of whole-matrix sweeps (iterative, logarithmic)
	// or 1 for single-sweep algorithms.
	Passes int
	// RowOps counts row-or operations (the elementary closure step).
	RowOps int
}

// Iterative computes the reflexive-transitive closure by semi-naive
// iteration: or successor rows into each row until a full sweep changes
// nothing. This is the relational "iterative algorithm" of the paper's
// related work, the class its Figure 1 algorithm belongs to.
func Iterative(g *graph.Graph) (*BitMatrix, Stats) {
	m := adjacency(g, true)
	n := m.rows
	var st Stats
	for {
		st.Passes++
		changed := false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && m.Get(i, j) {
					st.RowOps++
					if m.OrRow(i, j) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return m, st
		}
	}
}

// Logarithmic computes the closure by repeated squaring of the boolean
// matrix: O(log n) multiplications. The "logarithmic" algorithm of the
// cited transitive-closure studies.
func Logarithmic(g *graph.Graph) (*BitMatrix, Stats) {
	m := adjacency(g, true)
	n := m.rows
	var st Stats
	for {
		st.Passes++
		next := m.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.Get(i, j) {
					st.RowOps++
					next.OrRow(i, j)
				}
			}
		}
		if next.Equal(m) {
			return m, st
		}
		m = next
	}
}

// Warren computes the closure with Warren's two-pass variant of Warshall's
// algorithm: one pass over the lower triangle, one over the upper, each
// or-ing row k into row i when (i, k) is set. Two sweeps total, cache
// friendly — the reason the early DB studies favoured it.
func Warren(g *graph.Graph) (*BitMatrix, Stats) {
	m := adjacency(g, true)
	n := m.rows
	st := Stats{Passes: 2}
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			if m.Get(i, k) {
				st.RowOps++
				m.OrRow(i, k)
			}
		}
	}
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if m.Get(i, k) {
				st.RowOps++
				m.OrRow(i, k)
			}
		}
	}
	return m, st
}

// DFS computes the closure one row at a time by depth-first reachability —
// the "DFS algorithm" of the cited studies. Linear in edges per source.
func DFS(g *graph.Graph) (*BitMatrix, Stats) {
	n := g.NumNodes()
	m := NewBitMatrix(n)
	st := Stats{Passes: 1}
	stack := make([]graph.NodeID, 0, n)
	for s := 0; s < n; s++ {
		m.Set(s, s)
		stack = append(stack[:0], graph.NodeID(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Neighbors(u, func(a graph.Arc) {
				st.RowOps++
				if !m.Get(s, int(a.Head)) {
					m.Set(s, int(a.Head))
					stack = append(stack, a.Head)
				}
			})
		}
	}
	return m, st
}

// PartialClosure computes reachability from the given sources only — the
// partial transitive closure the paper's Section 1.2 discusses (Jiang's
// class, which Dijkstra-with-early-termination belongs to). Rows of the
// result are indexed by position in sources.
func PartialClosure(g *graph.Graph, sources []graph.NodeID) (*BitMatrix, error) {
	n := g.NumNodes()
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("closure: source %d out of range", s)
		}
	}
	out := NewBitMatrixRect(len(sources), n)
	stack := make([]graph.NodeID, 0, n)
	for i, s := range sources {
		seen := make([]bool, n)
		seen[s] = true
		out.Set(i, int(s))
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Neighbors(u, func(a graph.Arc) {
				if !seen[a.Head] {
					seen[a.Head] = true
					out.Set(i, int(a.Head))
					stack = append(stack, a.Head)
				}
			})
		}
	}
	return out, nil
}

// AllPairs computes all-pairs shortest-path costs with Floyd–Warshall —
// the cost-bearing all-pairs computation single-pair algorithms are the
// alternative to. dist[i][j] is +Inf when j is unreachable from i.
func AllPairs(g *graph.Graph) [][]float64 {
	n := g.NumNodes()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i == j {
				dist[i][j] = 0
			} else {
				dist[i][j] = math.Inf(1)
			}
		}
	}
	for u := 0; u < n; u++ {
		g.Neighbors(graph.NodeID(u), func(a graph.Arc) {
			if a.Cost < dist[u][a.Head] {
				dist[u][a.Head] = a.Cost
			}
		})
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + dist[k][j]; nd < dist[i][j] {
					dist[i][j] = nd
				}
			}
		}
	}
	return dist
}
