package closure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/search"
)

// randomDigraph builds a random directed graph with n nodes and ~density·n²
// edges.
func randomDigraph(rng *rand.Rand, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n, int(density*float64(n*n))+1)
	for i := 0; i < n; i++ {
		b.AddNode(rng.Float64(), rng.Float64())
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < density {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.5+rng.Float64())
			}
		}
	}
	return b.MustBuild()
}

func TestBitMatrixBasics(t *testing.T) {
	m := NewBitMatrix(70) // spans two words per row
	if m.N() != 70 || m.Cols() != 70 {
		t.Fatalf("dims %d×%d", m.N(), m.Cols())
	}
	m.Set(3, 65)
	if !m.Get(3, 65) || m.Get(3, 64) || m.Get(2, 65) {
		t.Error("Set/Get broken across word boundary")
	}
	if m.Count() != 1 {
		t.Errorf("Count = %d", m.Count())
	}
	c := m.Clone()
	if !c.Equal(m) {
		t.Error("clone not equal")
	}
	c.Set(0, 0)
	if c.Equal(m) {
		t.Error("Equal ignores differences")
	}
	if m.Equal(NewBitMatrix(3)) {
		t.Error("Equal ignores dimensions")
	}
	// OrRow.
	m.Set(5, 1)
	if !m.OrRow(3, 5) {
		t.Error("OrRow reported no change")
	}
	if !m.Get(3, 1) {
		t.Error("OrRow did not or")
	}
	if m.OrRow(3, 5) {
		t.Error("idempotent OrRow reported change")
	}
}

// All four closure algorithms must produce identical matrices on random
// digraphs, and each row must equal DFS reachability from that node.
func TestClosureAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(rng, 3+rng.Intn(40), 0.08)
		it, itStats := Iterative(g)
		lg, lgStats := Logarithmic(g)
		wa, _ := Warren(g)
		df, _ := DFS(g)
		if !it.Equal(lg) {
			t.Fatalf("trial %d: iterative != logarithmic", trial)
		}
		if !it.Equal(wa) {
			t.Fatalf("trial %d: iterative != warren", trial)
		}
		if !it.Equal(df) {
			t.Fatalf("trial %d: iterative != dfs", trial)
		}
		if itStats.Passes < 1 || lgStats.Passes < 1 {
			t.Fatalf("trial %d: zero passes", trial)
		}
	}
}

// The closure must agree with single-source reachability from the search
// package: closure(i,j) ⟺ dist(i→j) finite.
func TestClosureMatchesSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomDigraph(rng, 30, 0.06)
	m, _ := Warren(g)
	for s := 0; s < g.NumNodes(); s++ {
		dist, _ := search.SingleSource(g, graph.NodeID(s))
		for j := range dist {
			want := !math.IsInf(dist[j], 1)
			if m.Get(s, j) != want {
				t.Fatalf("closure(%d,%d)=%v but dist=%v", s, j, m.Get(s, j), dist[j])
			}
		}
	}
}

func TestClosureOnGridIsComplete(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 5})
	m, _ := DFS(g)
	if m.Count() != 25*25 {
		t.Errorf("grid closure has %d entries, want all %d", m.Count(), 25*25)
	}
}

func TestPartialClosure(t *testing.T) {
	// 0→1→2, 3 isolated.
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()

	m, err := PartialClosure(g, []graph.NodeID{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 2 || m.Cols() != 4 {
		t.Fatalf("dims %d×%d", m.N(), m.Cols())
	}
	// Row 0 = from node 1: reaches 1, 2.
	wantRow0 := []bool{false, true, true, false}
	for j, want := range wantRow0 {
		if m.Get(0, j) != want {
			t.Errorf("row 0 col %d = %v", j, m.Get(0, j))
		}
	}
	// Row 1 = from node 3: reaches only itself.
	if !m.Get(1, 3) || m.Get(1, 0) || m.Get(1, 2) {
		t.Error("row 1 wrong")
	}
	if _, err := PartialClosure(g, []graph.NodeID{9}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// Floyd–Warshall must agree with Dijkstra on every row.
func TestAllPairsMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomDigraph(rng, 3+rng.Intn(25), 0.15)
		dist := AllPairs(g)
		for s := 0; s < g.NumNodes(); s++ {
			oracle, _ := search.SingleSource(g, graph.NodeID(s))
			for j := range oracle {
				a, b := dist[s][j], oracle[j]
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					t.Fatalf("trial %d: (%d,%d) reachability %v vs %v", trial, s, j, a, b)
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					t.Fatalf("trial %d: (%d,%d) %v vs %v", trial, s, j, a, b)
				}
			}
		}
	}
}

// The paper's economics: for one pair, AllPairs does ~n× the work of a
// single Dijkstra. Confirm the row counts at least reflect reality — the
// all-pairs matrix answers n² questions; a single-pair run answers one.
func TestSinglePairEconomics(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 10, Model: gridgen.Variance, Seed: 2})
	s, d := gridgen.Pair(10, gridgen.Horizontal, 0)
	single, err := search.AStar(g, s, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// nil estimator behaves as zero → Dijkstra; sanity only.
	if !single.Found {
		t.Fatal("no path")
	}
	dist := AllPairs(g)
	if math.Abs(dist[s][d]-single.Cost) > 1e-9 {
		t.Errorf("all-pairs %v != single-pair %v", dist[s][d], single.Cost)
	}
}

func BenchmarkClosureFamily(b *testing.B) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8})
	algos := map[string]func(*graph.Graph) (*BitMatrix, Stats){
		"iterative":   Iterative,
		"logarithmic": Logarithmic,
		"warren":      Warren,
		"dfs":         DFS,
	}
	for name, fn := range algos {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(g)
			}
		})
	}
}
