// Package asciichart renders small line charts and scatter maps as text.
// The experiment harness uses it to regenerate the paper's figures in a
// terminal: multi-series line charts for Figures 5–7 and 9–12, and a map
// sketch for Figures 4 and 8.
package asciichart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points. Xs and Ys must have equal
// length.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// markers assigns each series a plotting glyph, cycling if needed.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Options sizes a chart.
type Options struct {
	// Width and Height of the plotting area in characters; zero selects
	// 60×20.
	Width, Height int
	// Title, XLabel, YLabel annotate the chart; all optional.
	Title, XLabel, YLabel string
}

// Line renders series as an ASCII line chart with a legend. Series with no
// points are skipped; an empty chart renders the frame only.
func Line(series []Series, opts Options) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 20
	}

	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.Xs {
			any = true
			minX = math.Min(minX, s.Xs[i])
			maxX = math.Max(maxX, s.Xs[i])
			minY = math.Min(minY, s.Ys[i])
			maxY = math.Max(maxY, s.Ys[i])
		}
	}
	if !any {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy
		if row >= 0 && row < h && cx >= 0 && cx < w {
			grid[row][cx] = m
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// Interpolate between consecutive points so lines read as lines.
		for i := 0; i+1 < len(s.Xs); i++ {
			steps := 2 * w
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				plot(s.Xs[i]+(s.Xs[i+1]-s.Xs[i])*f, s.Ys[i]+(s.Ys[i+1]-s.Ys[i])*f, m)
			}
		}
		for i := range s.Xs {
			plot(s.Xs[i], s.Ys[i], m)
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	yLo, yHi := formatTick(minY), formatTick(maxY)
	labelWidth := len(yLo)
	if len(yHi) > labelWidth {
		labelWidth = len(yHi)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = pad(yHi, labelWidth)
		case h - 1:
			label = pad(yLo, labelWidth)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", w))
	xLo, xHi := formatTick(minX), formatTick(maxX)
	gap := w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&sb, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", gap), xHi)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&sb, "   x: %s   y: %s\n", opts.XLabel, opts.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&sb, "   %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Point is one scatter mark for Map.
type Point struct {
	X, Y  float64
	Glyph byte
}

// Map renders a scatter of points (a road map sketch). Points with later
// positions overwrite earlier ones on collisions, so draw landmarks last.
func Map(points []Point, opts Options) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 66
	}
	if h <= 0 {
		h = 33
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if len(points) == 0 || maxX == minX || maxY == minY {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, p := range points {
		cx := int(math.Round((p.X - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((p.Y - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy
		if row >= 0 && row < h && cx >= 0 && cx < w {
			grid[row][cx] = p.Glyph
		}
	}
	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	for _, row := range grid {
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	return sb.String()
}
