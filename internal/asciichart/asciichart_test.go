package asciichart

import (
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	out := Line([]Series{
		{Name: "dijkstra", Xs: []float64{10, 20, 30}, Ys: []float64{99, 399, 899}},
		{Name: "astar", Xs: []float64{10, 20, 30}, Ys: []float64{85, 360, 838}},
	}, Options{Title: "Figure 5", Width: 40, Height: 10, XLabel: "grid side", YLabel: "iterations"})

	for _, want := range []string{"Figure 5", "dijkstra", "astar", "899", "85", "grid side", "iterations", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 10 rows + axis + tick row + label row + 2 legend rows.
	if len(lines) != 16 {
		t.Errorf("chart has %d lines, want 16:\n%s", len(lines), out)
	}
}

func TestLineEmpty(t *testing.T) {
	out := Line(nil, Options{})
	if out == "" {
		t.Error("empty chart rendered nothing")
	}
	out = Line([]Series{{Name: "empty"}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "empty") {
		t.Error("legend missing for empty series")
	}
}

func TestLineFlatSeries(t *testing.T) {
	// A constant series must not divide by zero.
	out := Line([]Series{{Name: "flat", Xs: []float64{1, 2, 3}, Ys: []float64{5, 5, 5}}},
		Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestLineSinglePoint(t *testing.T) {
	out := Line([]Series{{Name: "dot", Xs: []float64{1}, Ys: []float64{1}}},
		Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestMarkersCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 8; i++ {
		series = append(series, Series{Name: "s", Xs: []float64{0, 1}, Ys: []float64{0, 1}})
	}
	out := Line(series, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Error("marker cycling broke")
	}
}

func TestMap(t *testing.T) {
	out := Map([]Point{
		{X: 0, Y: 0, Glyph: '.'},
		{X: 1, Y: 1, Glyph: '.'},
		{X: 0.5, Y: 0.5, Glyph: 'A'},
	}, Options{Title: "Figure 8", Width: 20, Height: 10})
	for _, want := range []string{"Figure 8", "A", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("map missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 {
		t.Errorf("map has %d lines, want 11", len(lines))
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(nil, Options{Width: 5, Height: 3}); out == "" {
		t.Error("empty map rendered nothing")
	}
}

func TestTickFormatting(t *testing.T) {
	if formatTick(5) != "5" {
		t.Errorf("integer tick = %q", formatTick(5))
	}
	if formatTick(2.5) != "2.50" {
		t.Errorf("fraction tick = %q", formatTick(2.5))
	}
}
