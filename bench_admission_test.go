// Request-lifecycle benchmarks behind BENCH_PR5.json: the cost of the
// amortized context polls threaded through every kernel, and the
// admission gate's fast paths.
//
// The ctx-overhead comparison runs base and ctx variants of the same
// kernel back to back in one invocation. On this container's shared
// vCPU, wall-clock ns/op drifts 2-3x between runs but is stable within
// one, so the within-run ratio is the number that matters — along with
// allocs/op, which must be identical (the lifecycle is a stack value;
// polling allocates nothing).
//
// `make bench-admission` regenerates the numbers.
package repro_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// BenchmarkCtxOverhead measures the acceptance criterion: the ctx
// variants poll an amortized counter every expansion and ctx.Err() every
// CheckInterval-th, which must cost <2% over the base kernels on the
// 100x100 diagonal.
func BenchmarkCtxOverhead(b *testing.B) {
	g := gridgen.MustGenerate(gridgen.Config{K: 100, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(100, gridgen.Diagonal, benchSeed)
	ctx := context.Background()
	kernels := []struct {
		name string
		base func(*graph.Graph, graph.NodeID, graph.NodeID) (search.Result, error)
		ctx  func(context.Context, *graph.Graph, graph.NodeID, graph.NodeID) (search.Result, error)
	}{
		{"iterative", search.Iterative, search.IterativeCtx},
		{"dijkstra", search.Dijkstra, search.DijkstraCtx},
		{"bidirectional", search.Bidirectional, search.BidirectionalCtx},
	}
	for _, k := range kernels {
		b.Run(k.name+"/base", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.base(g, s, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(k.name+"/ctx", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.ctx(ctx, g, s, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdmissionAcquire measures the gate's uncontended fast path —
// the overhead every admitted request pays: one mutex round trip in,
// one out.
func BenchmarkAdmissionAcquire(b *testing.B) {
	gate := admission.NewGate(admission.Config{MaxInFlight: 4}, telemetry.NewRegistry())
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		release, err := gate.Acquire(ctx, 1)
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
}

// BenchmarkAdmissionShed measures the saturated path: capacity held,
// queue full, every Acquire rejected immediately. Shedding must stay
// cheap — its whole point is answering faster than serving would.
func BenchmarkAdmissionShed(b *testing.B) {
	gate := admission.NewGate(admission.Config{MaxInFlight: 1, MaxQueue: 1}, telemetry.NewRegistry())
	ctx := context.Background()
	release, err := gate.Acquire(ctx, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer release()
	parked, cancelParked := context.WithCancel(context.Background())
	defer cancelParked()
	go func() {
		if rel, err := gate.Acquire(parked, 1); err == nil {
			rel()
		}
	}()
	for gate.Stats().QueueDepth != 1 {
		runtime.Gosched()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gate.Acquire(ctx, 1); err != admission.ErrShed {
			b.Fatalf("expected shed, got %v", err)
		}
	}
}
