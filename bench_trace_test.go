// Tracing-overhead benchmarks: the zero-cost-when-disabled contract for
// the span layer, measured on the instrumented kernels. With no trace in
// the context every tracing.Start returns a nil span, every setter and
// End is a nil-check, and the kernel runs exactly as before — target
// under 1% and zero extra allocations versus the pre-tracing baseline
// (compare BENCH_PR1/PR4). The enabled runs price what a sampled request
// actually pays: span allocation, child linking, and capture into the
// ring. `make bench-trace` records both; see BENCH_PR7.json.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gridgen"
	"repro/internal/tracing"
)

// BenchmarkTraceOverhead runs the same warm Dijkstra and CH query
// workloads with tracing disabled (no trace in the context, the
// production default) and enabled (every request sampled and captured —
// the worst case).
func BenchmarkTraceOverhead(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	p := core.MustNew(g)
	if _, err := p.CHIndex(); err != nil { // build once, outside timing
		b.Fatal(err)
	}

	kernels := []struct {
		name string
		opts core.Options
	}{
		{"dijkstra", core.Options{Algorithm: core.Dijkstra}},
		{"ch", core.Options{Algorithm: core.CH}},
	}
	for _, kn := range kernels {
		b.Run(kn.name+"/disabled", func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.RouteCtx(ctx, s, d, kn.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(kn.name+"/enabled", func(b *testing.B) {
			tracer := tracing.New(tracing.Config{SampleRate: 1})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx, tr := tracer.StartRequest(context.Background(), "bench", "")
				if _, err := p.RouteCtx(ctx, s, d, kn.opts); err != nil {
					b.Fatal(err)
				}
				tracer.Finish(tr)
			}
		})
	}
}

// BenchmarkTraceRingCapture isolates the capture tail: building a
// three-span trace and committing it to the lock-striped ring, which is
// the fixed per-sampled-request cost independent of kernel work.
func BenchmarkTraceRingCapture(b *testing.B) {
	tracer := tracing.New(tracing.Config{SampleRate: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, tr := tracer.StartRequest(context.Background(), "bench", "")
		_, sp := tracing.Start(ctx, "kernel")
		sp.SetInt("iterations", int64(i))
		sp.End()
		tracer.Finish(tr)
	}
}
