// Telemetry-overhead benchmarks: the zero-cost-when-disabled contract,
// measured. The Recorder hook in the search kernels is one atomic load and
// a nil check per query when no recorder is installed; with the registry
// recorder enabled, each completed query costs a handful of atomic adds and
// one histogram observation. BenchmarkTelemetryOverhead runs the same
// Dijkstra workload in both states so `make bench-telemetry` can show the
// enabled/disabled delta directly (target: under 2% on the off state).
package repro_test

import (
	"testing"

	"repro/internal/gridgen"
	"repro/internal/search"
	"repro/internal/telemetry"
)

func BenchmarkTelemetryOverhead(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)

	b.Run("disabled", func(b *testing.B) {
		search.SetRecorder(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := search.Dijkstra(g, s, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		search.EnableTelemetry(reg)
		defer search.SetRecorder(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := search.Dijkstra(g, s, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrometheusExport prices one /metrics scrape over a registry
// shaped like a live server's (a few dozen series plus histograms).
func BenchmarkPrometheusExport(b *testing.B) {
	reg := telemetry.NewRegistry()
	for _, algo := range []string{"dijkstra", "astar-euclidean", "bidirectional", "iterative"} {
		reg.Counter("atis_search_runs_total", "h", telemetry.L("algo", algo)).Add(100)
		reg.Counter("atis_search_expansions_total", "h", telemetry.L("algo", algo)).Add(123456)
		h := reg.Histogram("atis_search_seconds", "h", nil, telemetry.L("algo", algo))
		for i := 0; i < 64; i++ {
			h.Observe(float64(i) * 1e-4)
		}
	}
	for _, code := range []string{"200", "400", "404", "405"} {
		reg.Counter("atis_http_requests_total", "h",
			telemetry.L("path", "/route"), telemetry.L("method", "GET"), telemetry.L("code", code)).Add(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WriteText(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
