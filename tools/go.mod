module repro/tools

go 1.22
